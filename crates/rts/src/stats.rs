//! Run-level reporting.

use pvr_des::{SimDuration, SimTime};
use pvr_privatize::Method;
use std::time::Duration;

/// One load-balancing step's record — the "LB database" entry the
/// runtime keeps for introspection (the §2.1 metrics: execution time per
/// rank, idle time per PE, communication volume).
#[derive(Debug, Clone)]
pub struct LbRecord {
    /// 1-based LB step number.
    pub step: u32,
    /// Virtual time of the sync barrier.
    pub at: SimTime,
    /// Per-PE load (seconds) measured since the previous step, before
    /// rebalancing.
    pub pe_loads_before: Vec<f64>,
    /// Per-PE load under the new placement (same measurements, new map).
    pub pe_loads_after: Vec<f64>,
    pub migrations: usize,
    /// Bytes tracked on the communication graph this period.
    pub comm_bytes: u64,
}

impl LbRecord {
    fn imbalance(loads: &[f64]) -> f64 {
        if loads.is_empty() {
            return 0.0;
        }
        let max = loads.iter().copied().fold(0.0, f64::max);
        let avg = loads.iter().sum::<f64>() / loads.len() as f64;
        if avg == 0.0 {
            // an all-idle step carries no imbalance (and must not report
            // the "perfectly balanced" 1.0 either)
            0.0
        } else {
            max / avg
        }
    }

    /// max/avg PE load before rebalancing (1.0 = perfectly balanced).
    pub fn imbalance_before(&self) -> f64 {
        Self::imbalance(&self.pe_loads_before)
    }

    pub fn imbalance_after(&self) -> f64 {
        Self::imbalance(&self.pe_loads_after)
    }
}

/// One migration's accounting.
#[derive(Debug, Clone, Copy)]
pub struct MigrationRecord {
    pub rank: usize,
    pub from_pe: usize,
    pub to_pe: usize,
    /// Bytes actually packed and moved (heap + stack + TLS + segments).
    pub bytes: usize,
    /// Wall time of pack + transfer + unpack (real in both modes).
    pub real_time: Duration,
    /// Virtual network cost charged (virtual mode).
    pub sim_cost: SimDuration,
}

/// Exact tallies of fault-injection and recovery activity during a run.
///
/// Every field increments at the same site that emits the corresponding
/// `pvr-trace` event, so integration tests can reconcile the two exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTallies {
    /// Data-message copies dropped in transit by the fault plan.
    pub msgs_dropped: u64,
    /// Ack copies dropped in transit.
    pub acks_dropped: u64,
    /// Copies discarded at the receiver for checksum mismatch.
    pub msgs_corrupted: u64,
    /// Extra copies injected by network duplication.
    pub duplicates_injected: u64,
    /// Copies discarded by receive-side dedup (network duplicates and
    /// spurious retransmits).
    pub duplicates_suppressed: u64,
    /// Retransmissions issued by the reliable delivery layer.
    pub retransmits: u64,
    /// Coordinated checkpoints taken at LB steps.
    pub checkpoints: u32,
    /// Coordinated rollback/restore operations performed.
    pub recoveries: u32,
    /// PEs killed by fault injection.
    pub pe_failures: u32,
    /// Checkpoint entries whose buddy degenerated to the primary itself
    /// (single alive PE): the image exists only once, so one more PE
    /// loss is unrecoverable.
    pub degenerate_buddies: u32,
}

impl FaultTallies {
    /// True when the run saw no fault or recovery activity at all.
    pub fn is_clean(&self) -> bool {
        *self == FaultTallies::default()
    }

    /// Fold another tally into this one (epoch-barrier merge).
    pub(crate) fn absorb(&mut self, o: &FaultTallies) {
        self.msgs_dropped += o.msgs_dropped;
        self.acks_dropped += o.acks_dropped;
        self.msgs_corrupted += o.msgs_corrupted;
        self.duplicates_injected += o.duplicates_injected;
        self.duplicates_suppressed += o.duplicates_suppressed;
        self.retransmits += o.retransmits;
        self.checkpoints += o.checkpoints;
        self.recoveries += o.recoveries;
        self.pe_failures += o.pe_failures;
        self.degenerate_buddies += o.degenerate_buddies;
    }
}

/// Exact tallies of elastic (dynamic PE set) activity during a run.
///
/// Every field increments at the same site that emits the corresponding
/// `pvr-trace` event (`Rescale`, `RescaleAborted`, `ReReplicate`,
/// `GeometryRestore`), so integration tests can reconcile the two
/// exactly. All-zero on fixed-geometry runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElasticTallies {
    /// Rescales committed at LB barriers (grow or shrink).
    pub rescales: u32,
    /// Planned rescales abandoned because a PE failure struck the same
    /// barrier (failure-atomicity: geometry kept, work rolled back by
    /// the normal recovery path).
    pub rescales_aborted: u32,
    /// PEs brought into the active set by committed rescales.
    pub pes_activated: u32,
    /// PEs drained and removed from the active set by committed
    /// rescales.
    pub pes_deactivated: u32,
    /// Ranks migrated off deactivated PEs during rescale drains.
    pub ranks_drained: u32,
    /// Fresh buddy checkpoints taken on a new geometry after a rescale
    /// or geometry restore committed.
    pub re_replications: u32,
    /// Checkpoints restored onto a geometry different from the one that
    /// took them.
    pub geometry_restores: u32,
}

impl ElasticTallies {
    /// True when the run never changed its PE geometry.
    pub fn is_clean(&self) -> bool {
        *self == ElasticTallies::default()
    }
}

/// Exact tallies of privatization-hardening activity: capability probes,
/// method fallbacks, and memory-safety guard trips.
///
/// Like [`FaultTallies`], every field increments at the same site that
/// emits the corresponding `pvr-trace` event (`MethodProbe`,
/// `MethodFallback`, `StackGuardTrip`, `ArenaGuardTrip`, `SegmentAudit`),
/// so the two reconcile exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HardeningTallies {
    /// Capability probes evaluated at startup (one per candidate method
    /// when the fallback chain is enabled).
    pub probes: u64,
    /// Degradations from one method to the next in the fallback chain
    /// (probe-predicted or mid-startup).
    pub fallbacks: u64,
    /// ULT stack red zones found clobbered.
    pub stack_guard_trips: u64,
    /// Isomalloc arena guard violations (double free, use-after-free,
    /// foreign pointer).
    pub arena_guard_trips: u64,
    /// Segment-integrity audits performed (per-slice trips and barrier
    /// sweeps).
    pub segment_audits: u64,
}

impl HardeningTallies {
    /// True when no probing, degradation, or guard activity occurred.
    pub fn is_clean(&self) -> bool {
        *self == HardeningTallies::default()
    }

    /// Fold another tally into this one (epoch-barrier merge).
    pub(crate) fn absorb(&mut self, o: &HardeningTallies) {
        self.probes += o.probes;
        self.fallbacks += o.fallbacks;
        self.stack_guard_trips += o.stack_guard_trips;
        self.arena_guard_trips += o.arena_guard_trips;
        self.segment_audits += o.segment_audits;
    }
}

/// Exact tallies of copy-on-write privatization activity (CowGlobals).
///
/// Like [`FaultTallies`], every fault/privatization increment happens at
/// the same site that emits the corresponding `pvr-trace` event
/// (`PageFault`, `PagePrivatized`, `DedupAudit`), so integration tests
/// can reconcile the two exactly. All-zero for eager methods.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CowTallies {
    /// Simulated page faults taken (first write to a shared page).
    pub page_faults: u64,
    /// Pages privatized (equals `page_faults` in this model).
    pub pages_privatized: u64,
    /// Pages of the per-rank data segment that never diverged on any
    /// rank — the dedup audit's shared-page count.
    pub shared_pages: u64,
    /// Pages per rank data segment.
    pub total_pages: u64,
    /// Ranks whose COW segment was force-materialized (private copy of
    /// every page). Checkpoint packing must keep this zero — a nonzero
    /// count under checkpointing is the dedup-defeat regression.
    pub materialized_ranks: u64,
}

impl CowTallies {
    /// True when the run had no page-granular privatization activity.
    pub fn is_clean(&self) -> bool {
        *self == CowTallies::default()
    }
}

/// Exact tallies of incremental/asynchronous checkpoint activity.
///
/// Like [`FaultTallies`], every field increments at the same site that
/// emits the corresponding `pvr-trace` event (`CkptDelta`, `CkptSeal`,
/// `CkptAsyncDrain`, `CkptCompact`), so integration tests can reconcile
/// the two exactly. All-zero when `ckpt_incremental` is off — except
/// `pause_ns`, which measures checkpoint capture pause in both modes
/// and is wall-clock (excluded from the digests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CkptTallies {
    /// Incremental delta captures taken at LB barriers.
    pub deltas: u32,
    /// Dirty page-chunks captured across all delta captures.
    pub pages_delta: u64,
    /// Sparse patch payload bytes across all delta captures.
    pub delta_bytes: u64,
    /// Consistent-cut seals of in-flight deltas at the following barrier.
    pub seals: u32,
    /// Asynchronous drains of sealed deltas to buddy PEs.
    pub async_drains: u32,
    /// Delta payload bytes streamed to buddies asynchronously.
    pub async_bytes: u64,
    /// Peak unsealed (in-flight) delta bytes observed between barriers.
    pub max_in_flight_bytes: u64,
    /// Delta-chain compactions (fresh base capture replacing a chain).
    pub compactions: u32,
    /// Delta-chain length at end of run (0 when the last capture was a
    /// base, or in full mode).
    pub chain_len: u32,
    /// Longest delta chain observed during the run.
    pub max_chain_len: u32,
    /// Wall-clock nanoseconds spent inside checkpoint captures (the
    /// application pause). Measured in both full and incremental modes;
    /// excluded from the digests because wall-clock varies run to run.
    pub pause_ns: u64,
}

impl CkptTallies {
    /// True when the run saw no incremental-checkpoint activity (a full
    /// checkpoint pause alone does not count as activity).
    pub fn is_clean(&self) -> bool {
        let mut z = *self;
        z.pause_ns = 0;
        z == CkptTallies::default()
    }
}

/// Exact tallies of nonblocking-request activity during a run.
///
/// Like [`FaultTallies`], every field increments at the same site that
/// emits the corresponding `pvr-trace` event (`ReqPost`, `ReqComplete`,
/// `ReqContinuation`, `ReqWaitBlock`), so integration tests can
/// reconcile the two exactly. All-zero on blocking-only runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReqTallies {
    /// Isend requests posted into rank request tables.
    pub send_posts: u64,
    /// Irecv requests posted into rank request tables (including posts
    /// prematched against already-arrived unexpected messages).
    pub recv_posts: u64,
    /// Isend requests completed (payload handed to the runtime, or the
    /// reliable-delivery ack arrived).
    pub send_completes: u64,
    /// Irecv requests completed (matched against an arriving or already
    /// buffered message).
    pub recv_completes: u64,
    /// Completions delivered through a registered continuation closure
    /// instead of resuming a suspended ULT.
    pub continuations: u64,
    /// Wait-family suspensions taken because at least one awaited
    /// request was still pending.
    pub wait_blocks: u64,
    /// Requests still open (never completed or never reaped) when their
    /// rank finished — the leaked-request count cleaned up at finalize.
    pub leaked: u64,
}

impl ReqTallies {
    /// True when the run used no nonblocking-request machinery.
    pub fn is_clean(&self) -> bool {
        *self == ReqTallies::default()
    }

    /// Fold another tally into this one (epoch-barrier merge).
    pub(crate) fn absorb(&mut self, o: &ReqTallies) {
        self.send_posts += o.send_posts;
        self.recv_posts += o.recv_posts;
        self.send_completes += o.send_completes;
        self.recv_completes += o.recv_completes;
        self.continuations += o.continuations;
        self.wait_blocks += o.wait_blocks;
        self.leaked += o.leaked;
    }
}

/// Execution-engine counters: how the run was actually driven.
///
/// Unlike the rest of [`RunReport`], these are *not* part of the
/// deterministic simulation result — worker wall-clocks vary run to run
/// and the epoch/barrier split depends only on the engine, so
/// [`RunReport::sim_digest`] deliberately excludes this block.
#[derive(Debug, Clone, Default)]
pub struct EngineTallies {
    /// Worker threads the engine actually used (1 = serial path).
    pub threads: usize,
    /// Epochs (virtual mode) or scheduler bursts (real-time mode) driven.
    pub epochs: u64,
    /// Epoch barriers crossed by the parallel engine (0 on serial runs).
    pub barriers: u64,
    /// Message sends whose payload fit the envelope pool's inline
    /// small-payload storage (≤ 64 B: no heap allocation on the send
    /// path). Counted identically on fast and reference paths — the
    /// classification depends only on the message stream.
    pub pool_hits: u64,
    /// Message sends whose payload spilled to a refcounted heap buffer.
    pub pool_misses: u64,
    /// Wall-clock each worker spent executing lane events, indexed by
    /// worker id.
    pub worker_wall: Vec<Duration>,
}

/// What a completed run reports.
#[derive(Debug)]
pub struct RunReport {
    /// Virtual makespan: max PE clock at completion (virtual mode).
    pub sim_elapsed: SimDuration,
    /// Wall-clock time of the run loop.
    pub real_elapsed: Duration,
    /// Per-PE (busy, idle) virtual time.
    pub pe_busy_idle: Vec<(SimDuration, SimDuration)>,
    /// Total ULT context switches performed.
    pub context_switches: u64,
    pub messages_delivered: u64,
    pub lb_steps: u32,
    pub migrations: Vec<MigrationRecord>,
    /// Final virtual clock per PE.
    pub pe_clocks: Vec<SimTime>,
    /// Per-LB-step records (empty when no balancer is configured).
    pub lb_history: Vec<LbRecord>,
    /// Fault-injection and recovery activity (all-zero on clean runs).
    pub faults: FaultTallies,
    /// The privatization method the configuration asked for.
    pub method_requested: Method,
    /// The method the job actually started under (differs from
    /// `method_requested` exactly when the fallback chain degraded).
    pub method_landed: Method,
    /// Probe/fallback/guard activity (all-zero without hardening knobs).
    pub hardening: HardeningTallies,
    /// Copy-on-write privatization activity plus the end-of-run dedup
    /// audit (all-zero for eager methods).
    pub cow: CowTallies,
    /// Elastic rescale/re-replication activity (all-zero on
    /// fixed-geometry runs).
    pub elastic: ElasticTallies,
    /// Incremental/asynchronous checkpoint activity (all-zero in full
    /// mode except the wall-clock `pause_ns`).
    pub ckpt: CkptTallies,
    /// Nonblocking-request activity (all-zero on blocking-only runs).
    /// Part of [`RunReport::sim_digest`] but not
    /// [`RunReport::sim_digest_core`], so continuation-vs-suspension
    /// equivalence can be checked on the core digest alone.
    pub req: ReqTallies,
    /// How the run was driven (threads, epochs, barriers, worker wall).
    /// Excluded from [`RunReport::sim_digest`].
    pub engine: EngineTallies,
}

/// FNV-1a accumulation step shared by the digest methods.
fn fnv_mix(h: &mut u64, bytes: impl IntoIterator<Item = u8>) {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(PRIME);
    }
}

impl RunReport {
    pub fn total_migration_bytes(&self) -> usize {
        self.migrations.iter().map(|m| m.bytes).sum()
    }

    /// FNV-1a digest of every *deterministic* field of the report.
    ///
    /// Two runs of the same configuration must produce the same digest
    /// regardless of [`Parallelism`](crate::Parallelism) — this is the
    /// bit-identity check the parallel-determinism suite pins. Wall-clock
    /// fields (`real_elapsed`, per-migration `real_time`, the whole
    /// `engine` block) are excluded because they legitimately vary.
    pub fn sim_digest(&self) -> u64 {
        let mut digest = self.sim_digest_core();
        let mut put = |v: u64| fnv_mix(&mut digest, v.to_le_bytes());
        put(self.cow.page_faults);
        put(self.cow.pages_privatized);
        put(self.cow.shared_pages);
        put(self.cow.total_pages);
        put(self.cow.materialized_ranks);
        let k = &self.ckpt;
        for v in [
            k.deltas as u64,
            k.pages_delta,
            k.delta_bytes,
            k.seals as u64,
            k.async_drains as u64,
            k.async_bytes,
            k.max_in_flight_bytes,
            k.compactions as u64,
            k.chain_len as u64,
            k.max_chain_len as u64,
            // pause_ns deliberately excluded: wall-clock.
        ] {
            put(v);
        }
        let e = &self.elastic;
        for v in [
            e.rescales,
            e.rescales_aborted,
            e.pes_activated,
            e.pes_deactivated,
            e.ranks_drained,
            e.re_replications,
            e.geometry_restores,
        ] {
            put(v as u64);
        }
        let q = &self.req;
        for v in [
            q.send_posts,
            q.recv_posts,
            q.send_completes,
            q.recv_completes,
            q.continuations,
            q.wait_blocks,
            q.leaked,
        ] {
            put(v);
        }
        for name in [self.method_requested, self.method_landed] {
            fnv_mix(&mut digest, name.to_string().bytes());
        }
        digest
    }

    /// The method-agnostic prefix of [`Self::sim_digest`]: every
    /// deterministic *simulation* field, excluding the method names and
    /// the COW tallies. Two privatization methods that promise identical
    /// execution (eager PIEglobals vs. page-granular CowGlobals) must
    /// produce identical core digests for the same configuration — the
    /// cross-method bit-identity check.
    pub fn sim_digest_core(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        let mut digest = OFFSET;
        let mut put = |v: u64| fnv_mix(&mut digest, v.to_le_bytes());
        put(self.sim_elapsed.nanos());
        put(self.pe_busy_idle.len() as u64);
        for (b, i) in &self.pe_busy_idle {
            put(b.nanos());
            put(i.nanos());
        }
        put(self.context_switches);
        put(self.messages_delivered);
        put(self.lb_steps as u64);
        put(self.migrations.len() as u64);
        for m in &self.migrations {
            put(m.rank as u64);
            put(m.from_pe as u64);
            put(m.to_pe as u64);
            put(m.bytes as u64);
            put(m.sim_cost.nanos());
        }
        put(self.pe_clocks.len() as u64);
        for c in &self.pe_clocks {
            put(c.nanos());
        }
        put(self.lb_history.len() as u64);
        for r in &self.lb_history {
            put(r.step as u64);
            put(r.at.nanos());
            for l in r.pe_loads_before.iter().chain(&r.pe_loads_after) {
                put(l.to_bits());
            }
            put(r.migrations as u64);
            put(r.comm_bytes);
        }
        let f = &self.faults;
        for v in [
            f.msgs_dropped,
            f.acks_dropped,
            f.msgs_corrupted,
            f.duplicates_injected,
            f.duplicates_suppressed,
            f.retransmits,
            f.checkpoints as u64,
            f.recoveries as u64,
            f.pe_failures as u64,
            f.degenerate_buddies as u64,
        ] {
            put(v);
        }
        let hd = &self.hardening;
        for v in [
            hd.probes,
            hd.fallbacks,
            hd.stack_guard_trips,
            hd.arena_guard_trips,
            hd.segment_audits,
        ] {
            put(v);
        }
        digest
    }

    /// Human-readable run summary (examples and demos).
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "virtual time: {}   wall: {:.3} s",
            self.sim_elapsed,
            self.real_elapsed.as_secs_f64()
        );
        let _ = writeln!(
            out,
            "context switches: {}   messages: {}   LB steps: {}",
            self.context_switches, self.messages_delivered, self.lb_steps
        );
        let _ = writeln!(
            out,
            "migrations: {} ({:.1} MB moved)   mean PE utilization: {:.0}%",
            self.migrations.len(),
            self.total_migration_bytes() as f64 / 1e6,
            self.mean_utilization() * 100.0
        );
        if !self.faults.is_clean() {
            let f = &self.faults;
            let _ = writeln!(
                out,
                "faults: {} drops ({} ack), {} corrupt, {} dups injected/{} suppressed, {} retransmits",
                f.msgs_dropped + f.acks_dropped,
                f.acks_dropped,
                f.msgs_corrupted,
                f.duplicates_injected,
                f.duplicates_suppressed,
                f.retransmits
            );
            let _ = writeln!(
                out,
                "recovery: {} checkpoints, {} PE failures, {} rollbacks",
                f.checkpoints, f.pe_failures, f.recoveries
            );
        }
        if self.method_landed != self.method_requested {
            let _ = writeln!(
                out,
                "method: {} degraded to {} ({} fallbacks)",
                self.method_requested, self.method_landed, self.hardening.fallbacks
            );
        }
        if !self.hardening.is_clean() {
            let h = &self.hardening;
            let _ = writeln!(
                out,
                "hardening: {} probes, {} fallbacks, {} stack trips, {} arena trips, {} audits",
                h.probes, h.fallbacks, h.stack_guard_trips, h.arena_guard_trips, h.segment_audits
            );
        }
        if !self.cow.is_clean() {
            let c = &self.cow;
            let _ = writeln!(
                out,
                "cow: {} page faults, {} pages privatized, {}/{} pages shared across ranks",
                c.page_faults, c.pages_privatized, c.shared_pages, c.total_pages
            );
        }
        if !self.elastic.is_clean() {
            let e = &self.elastic;
            let _ = writeln!(
                out,
                "elastic: {} rescales ({} aborted), +{} / -{} PEs, {} ranks drained, {} re-replications, {} geometry restores",
                e.rescales,
                e.rescales_aborted,
                e.pes_activated,
                e.pes_deactivated,
                e.ranks_drained,
                e.re_replications,
                e.geometry_restores
            );
        }
        if !self.ckpt.is_clean() {
            let k = &self.ckpt;
            let _ = writeln!(
                out,
                "ckpt: {} deltas ({} pages, {} B), {} seals, {} async drains ({} B), {} compactions, chain {}/{} max, pause {} ns",
                k.deltas,
                k.pages_delta,
                k.delta_bytes,
                k.seals,
                k.async_drains,
                k.async_bytes,
                k.compactions,
                k.chain_len,
                k.max_chain_len,
                k.pause_ns
            );
        }
        if !self.req.is_clean() {
            let q = &self.req;
            let _ = writeln!(
                out,
                "requests: {}+{} posted (send+recv), {}+{} completed, {} continuations, {} wait blocks, {} leaked",
                q.send_posts,
                q.recv_posts,
                q.send_completes,
                q.recv_completes,
                q.continuations,
                q.wait_blocks,
                q.leaked
            );
        }
        if self.engine.threads > 1 {
            let _ = writeln!(
                out,
                "engine: {} threads, {} epochs, {} barriers",
                self.engine.threads, self.engine.epochs, self.engine.barriers
            );
        }
        for (pe, (busy, idle)) in self.pe_busy_idle.iter().enumerate() {
            let _ = writeln!(out, "  PE {pe}: busy {busy} / idle {idle}");
        }
        out
    }

    /// Mean PE utilization over the run (virtual mode).
    pub fn mean_utilization(&self) -> f64 {
        if self.pe_busy_idle.is_empty() {
            return 0.0;
        }
        let us: Vec<f64> = self
            .pe_busy_idle
            .iter()
            .map(|(b, i)| {
                let t = b.as_secs_f64() + i.as_secs_f64();
                if t == 0.0 {
                    0.0
                } else {
                    b.as_secs_f64() / t
                }
            })
            .collect();
        us.iter().sum::<f64>() / us.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_renders() {
        let r = RunReport {
            sim_elapsed: SimDuration::from_millis(12),
            real_elapsed: Duration::from_millis(3),
            pe_busy_idle: vec![
                (SimDuration::from_millis(10), SimDuration::from_millis(2)),
                (SimDuration::from_millis(6), SimDuration::from_millis(6)),
            ],
            context_switches: 42,
            messages_delivered: 7,
            lb_steps: 2,
            migrations: vec![MigrationRecord {
                rank: 0,
                from_pe: 0,
                to_pe: 1,
                bytes: 1 << 20,
                real_time: Duration::from_micros(500),
                sim_cost: SimDuration::from_micros(90),
            }],
            pe_clocks: vec![SimTime(12_000_000), SimTime(12_000_000)],
            lb_history: vec![LbRecord {
                step: 1,
                at: SimTime(5_000_000),
                pe_loads_before: vec![0.010, 0.002],
                pe_loads_after: vec![0.006, 0.006],
                migrations: 2,
                comm_bytes: 1024,
            }],
            faults: FaultTallies::default(),
            method_requested: Method::PieGlobals,
            method_landed: Method::PieGlobals,
            hardening: HardeningTallies::default(),
            cow: CowTallies::default(),
            elastic: ElasticTallies::default(),
            ckpt: CkptTallies::default(),
            req: ReqTallies::default(),
            engine: EngineTallies::default(),
        };
        let s = r.summary();
        assert!(s.contains("context switches: 42"));
        assert!(!s.contains("faults:"), "clean run must omit fault lines");
        assert!(!s.contains("hardening:"), "clean run must omit hardening lines");
        assert!(!s.contains("degraded"), "same method must omit the fallback line");
        assert!(s.contains("migrations: 1"));
        assert!(s.contains("PE 1"));
        assert!((r.mean_utilization() - (10.0 / 12.0 + 0.5) / 2.0).abs() < 1e-9);
        assert_eq!(r.total_migration_bytes(), 1 << 20);
        let rec = &r.lb_history[0];
        assert!((rec.imbalance_before() - 10.0 / 6.0).abs() < 1e-9);
        assert!((rec.imbalance_after() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn summary_renders_fault_lines_when_active() {
        let r = RunReport {
            sim_elapsed: SimDuration::from_millis(1),
            real_elapsed: Duration::from_millis(1),
            pe_busy_idle: vec![],
            context_switches: 0,
            messages_delivered: 0,
            lb_steps: 1,
            migrations: vec![],
            pe_clocks: vec![],
            lb_history: vec![],
            faults: FaultTallies {
                msgs_dropped: 3,
                acks_dropped: 1,
                retransmits: 4,
                checkpoints: 2,
                recoveries: 1,
                pe_failures: 1,
                ..Default::default()
            },
            method_requested: Method::PieGlobals,
            method_landed: Method::PieGlobals,
            hardening: HardeningTallies::default(),
            cow: CowTallies::default(),
            elastic: ElasticTallies::default(),
            ckpt: CkptTallies::default(),
            req: ReqTallies::default(),
            engine: EngineTallies::default(),
        };
        let s = r.summary();
        assert!(s.contains("faults: 4 drops (1 ack)"), "{s}");
        assert!(s.contains("recovery: 2 checkpoints, 1 PE failures, 1 rollbacks"), "{s}");
    }

    #[test]
    fn summary_renders_degradation_and_hardening_lines() {
        let r = RunReport {
            sim_elapsed: SimDuration::from_millis(1),
            real_elapsed: Duration::from_millis(1),
            pe_busy_idle: vec![],
            context_switches: 0,
            messages_delivered: 0,
            lb_steps: 0,
            migrations: vec![],
            pe_clocks: vec![],
            lb_history: vec![],
            faults: FaultTallies::default(),
            method_requested: Method::PipGlobals,
            method_landed: Method::FsGlobals,
            hardening: HardeningTallies {
                probes: 3,
                fallbacks: 1,
                segment_audits: 2,
                ..Default::default()
            },
            cow: CowTallies::default(),
            elastic: ElasticTallies::default(),
            ckpt: CkptTallies::default(),
            req: ReqTallies::default(),
            engine: EngineTallies::default(),
        };
        let s = r.summary();
        assert!(s.contains("method: pipglobals degraded to fsglobals (1 fallbacks)"), "{s}");
        assert!(
            s.contains("hardening: 3 probes, 1 fallbacks, 0 stack trips, 0 arena trips, 2 audits"),
            "{s}"
        );
        assert!(!r.hardening.is_clean());
    }

    #[test]
    fn imbalance_of_empty_or_idle_step_is_zero() {
        let rec = LbRecord {
            step: 1,
            at: SimTime(0),
            pe_loads_before: vec![],
            pe_loads_after: vec![0.0, 0.0, 0.0],
            migrations: 0,
            comm_bytes: 0,
        };
        // empty load vector: no PEs measured, no imbalance — and no NaN
        assert_eq!(rec.imbalance_before(), 0.0);
        // all-idle step: must not claim "perfectly balanced" (1.0)
        assert_eq!(rec.imbalance_after(), 0.0);
        assert!(rec.imbalance_before().is_finite());
    }

    #[test]
    fn imbalance_single_pe_is_balanced() {
        let rec = LbRecord {
            step: 1,
            at: SimTime(0),
            pe_loads_before: vec![0.25],
            pe_loads_after: vec![0.25],
            migrations: 0,
            comm_bytes: 0,
        };
        assert!((rec.imbalance_before() - 1.0).abs() < 1e-12);
    }
}
