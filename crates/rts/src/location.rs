//! Rank → PE directory.
//!
//! Charm++ performs *distributed* location management with forwarding and
//! caching so that no node needs a global view; messages sent to a
//! migrated rank chase at most a short forwarding chain. In this
//! single-address-space reproduction the directory is centralized, but it
//! keeps the same interface (lookup may be stale, `update` is the
//! migration commit point) and counts forwarding hops so the LB
//! experiments can report location traffic.

use crate::{PeId, RankId};

#[derive(Debug)]
pub struct LocationManager {
    home: Vec<PeId>,
    /// Forwarding lookups served since construction (a message arriving
    /// at a rank's old PE counts one hop).
    forwards: u64,
    migrations: u64,
}

impl LocationManager {
    /// Initial block mapping of `n_ranks` onto PEs, `ratio` per PE.
    pub fn new_block(n_ranks: usize, n_pes: usize) -> LocationManager {
        assert!(n_ranks > 0 && n_pes > 0);
        let ratio = n_ranks.div_ceil(n_pes);
        LocationManager {
            home: (0..n_ranks).map(|r| (r / ratio).min(n_pes - 1)).collect(),
            forwards: 0,
            migrations: 0,
        }
    }

    pub fn n_ranks(&self) -> usize {
        self.home.len()
    }

    pub fn lookup(&self, rank: RankId) -> PeId {
        self.home[rank]
    }

    /// Commit a migration.
    pub fn update(&mut self, rank: RankId, to: PeId) {
        if self.home[rank] != to {
            self.home[rank] = to;
            self.migrations += 1;
        }
    }

    /// A message was routed using a stale location and had to be
    /// forwarded.
    pub fn note_forward(&mut self) {
        self.forwards += 1;
    }

    pub fn forwards(&self) -> u64 {
        self.forwards
    }

    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Ranks resident on `pe` (the PIEglobals reduction-operator
    /// requirement: a PE applying a user op must host at least one rank).
    pub fn residents(&self, pe: PeId) -> impl Iterator<Item = RankId> + '_ {
        self.home
            .iter()
            .enumerate()
            .filter(move |(_, &p)| p == pe)
            .map(|(r, _)| r)
    }

    pub fn resident_count(&self, pe: PeId) -> usize {
        self.home.iter().filter(|&&p| p == pe).count()
    }

    /// Current rank → PE assignment snapshot.
    pub fn placements(&self) -> Vec<PeId> {
        self.home.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mapping() {
        let lm = LocationManager::new_block(8, 2);
        assert_eq!(lm.lookup(0), 0);
        assert_eq!(lm.lookup(3), 0);
        assert_eq!(lm.lookup(4), 1);
        assert_eq!(lm.lookup(7), 1);
        assert_eq!(lm.resident_count(0), 4);
    }

    #[test]
    fn uneven_mapping_covers_all_pes_range() {
        let lm = LocationManager::new_block(7, 3); // ratio 3: 3,3,1
        assert_eq!(lm.lookup(6), 2);
        let counts: Vec<usize> = (0..3).map(|p| lm.resident_count(p)).collect();
        assert_eq!(counts.iter().sum::<usize>(), 7);
    }

    #[test]
    fn update_tracks_migrations() {
        let mut lm = LocationManager::new_block(4, 2);
        lm.update(0, 1);
        assert_eq!(lm.lookup(0), 1);
        assert_eq!(lm.migrations(), 1);
        lm.update(0, 1); // no-op
        assert_eq!(lm.migrations(), 1);
        assert_eq!(lm.resident_count(1), 3);
        assert_eq!(lm.residents(0).collect::<Vec<_>>(), vec![1]);
    }
}
