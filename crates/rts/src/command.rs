//! The rank ⇄ scheduler protocol and the rank-side API ([`RankCtx`]).
//!
//! A virtual rank is a ULT. Every effectful operation (send, receive,
//! declaring computed work, reaching a load-balancing sync point) is
//! performed by writing a [`Command`] into the rank's slot and yielding;
//! the PE scheduler handles it and resumes the rank with a [`Response`].
//! This is exactly the shape of AMPI: blocking MPI calls trap into the
//! scheduler, which may context-switch to another ready rank.

use crate::message::RtsMessage;
use crate::{PeId, RankId};
use bytes::Bytes;
use parking_lot::Mutex;
use pvr_des::SimDuration;
use pvr_privatize::RankInstance;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Delivery-time matching predicate for a posted nonblocking receive.
///
/// The runtime stays MPI-agnostic: `pvr-ampi` encodes its envelope
/// (communicator, message kind, MPI tag) into the rts-level `tag` word,
/// and a posted receive matches a message when the masked tag bits agree
/// and the source filter (if any) matches. `src: None` is a wildcard
/// source; masking out the low tag bits is a wildcard tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchSpec {
    /// Required sender, or `None` for any source.
    pub src: Option<RankId>,
    /// Which bits of the rts tag participate in matching.
    pub tag_mask: u64,
    /// Required value of the masked bits.
    pub tag_value: u64,
}

impl MatchSpec {
    /// Does `msg` satisfy this predicate?
    pub fn matches(&self, msg: &RtsMessage) -> bool {
        self.src.is_none_or(|s| s == msg.from) && (msg.tag & self.tag_mask) == self.tag_value
    }
}

/// What a rank asks of its scheduler.
#[derive(Debug)]
pub enum Command {
    /// Post a message; completes immediately (buffered send).
    Send {
        to: RankId,
        tag: u64,
        payload: Bytes,
    },
    /// Block until *any* message for this rank arrives (MPI matching
    /// happens inside the rank, in `pvr-ampi`).
    Recv,
    /// Non-blocking receive.
    TryRecv,
    /// Declare `work` of computation (advances the PE's virtual clock;
    /// no-op in real-time mode where the work physically happened).
    Compute(SimDuration),
    /// Cooperative yield: stay ready, let other ranks run.
    Yield,
    /// Load-balancing sync point (AMPI's `MPI_Migrate`): blocks until all
    /// ranks arrive, then the runtime may migrate ranks.
    AtSync,
    /// Allocate from the rank's Isomalloc heap (so the memory migrates
    /// with the rank).
    AllocHeap { size: usize, align: usize },
    /// Return an allocation to the rank's Isomalloc heap. With the arena
    /// guard enabled, an invalid free (double free, foreign pointer) or a
    /// write through a stale pointer surfaces as a clean rank-attributed
    /// runtime error instead of undefined behavior.
    FreeHeap { addr: usize, size: usize },
    /// Post a nonblocking send into the rank's request table; returns a
    /// request id immediately. Under reliable delivery the request
    /// completes when the payload's ack arrives; otherwise it completes
    /// at post (buffered semantics).
    ReqPostSend {
        to: RankId,
        tag: u64,
        payload: Bytes,
    },
    /// Post a nonblocking receive with a delivery-time matching
    /// predicate. If a matching message is already buffered in the
    /// rank's mailbox it is claimed now; otherwise the request stays
    /// pending and the *deposit path* completes it when a matching
    /// message arrives — not when the rank later waits.
    ReqPostRecv { spec: MatchSpec },
    /// Post an already-satisfied receive: the caller (pvr-ampi) matched
    /// the message against its own unexpected-message queue before the
    /// runtime ever saw a posted receive. The table entry is born
    /// complete so the wait-family calls observe uniform semantics.
    ReqPostLocal,
    /// Wait until the identified requests complete: all of them
    /// (`any == false`) or at least one (`any == true`). Completed
    /// requests are reaped from the table and returned. `cont` marks a
    /// continuation-style wait — the scheduler tallies completions
    /// delivered this way as continuations rather than suspensions.
    ReqWait {
        ids: Vec<u64>,
        any: bool,
        cont: bool,
    },
    /// Nonblocking completion probe: reap and return whichever of the
    /// identified requests have completed; never suspends.
    ReqTest { ids: Vec<u64>, cont: bool },
}

/// The scheduler's reply.
#[derive(Debug)]
pub enum Response {
    Ack,
    Message(RtsMessage),
    NoMessage,
    /// Address of a fresh heap allocation.
    Addr(usize),
    /// Id of a freshly posted nonblocking request.
    ReqId(u64),
    /// Completed requests reaped by `ReqWait`/`ReqTest`: `(id, message)`
    /// pairs in completion order. Send completions and prematched local
    /// posts carry `None`.
    ReqOutcomes(Vec<(u64, Option<RtsMessage>)>),
}

/// Mailbox-sized shared cell between one rank and the scheduler. The two
/// never run concurrently (cooperative, single OS thread), but the mutex
/// keeps the types honest and is uncontended.
#[derive(Default)]
pub struct Slot {
    pub cmd: Option<Command>,
    pub resp: Option<Response>,
}

/// Live, lock-free-readable facts about a rank that change as it runs.
pub struct RankShared {
    /// Where the rank currently lives (updated on migration).
    pub current_pe: AtomicUsize,
    /// The rank's view of "now", nanoseconds (virtual clock in virtual
    /// mode; updated before each resume).
    pub now_ns: AtomicU64,
}

/// Converts application work (flops, bytes touched) into virtual time.
///
/// Used by apps to declare `compute()` durations that reflect the real
/// kernels they just executed; defaults approximate one EPYC-7742 core.
#[derive(Debug, Clone, Copy)]
pub struct WorkModel {
    pub flops_per_sec: f64,
    pub mem_bytes_per_sec: f64,
}

impl Default for WorkModel {
    fn default() -> Self {
        WorkModel {
            flops_per_sec: 3.0e9,
            mem_bytes_per_sec: 20e9,
        }
    }
}

impl WorkModel {
    /// Cost of a kernel doing `flops` floating-point ops over `bytes` of
    /// memory traffic: max of the compute and memory roofline terms.
    pub fn kernel_cost(&self, flops: f64, bytes: f64) -> SimDuration {
        let t = (flops / self.flops_per_sec).max(bytes / self.mem_bytes_per_sec);
        SimDuration::from_secs_f64(t.max(0.0))
    }
}

/// The rank-side handle: everything a rank body may do.
///
/// Cloneable so an app can hand it to helper layers (`pvr-ampi` wraps it).
///
/// # Locking hazard
///
/// Ranks are cooperatively scheduled on one OS thread. Never hold a
/// process-wide lock (e.g. a `Mutex` shared with other ranks) across a
/// blocking call ([`RankCtx::recv`], [`RankCtx::at_sync`], any
/// collective): the scheduler will switch to another rank on the same
/// thread, and if that rank takes the same lock the whole process
/// deadlocks — the moral equivalent of calling a blocking MPI function
/// inside a critical section.
#[derive(Clone)]
pub struct RankCtx {
    pub(crate) rank: RankId,
    pub(crate) n_ranks: usize,
    pub(crate) slot: Arc<Mutex<Slot>>,
    pub(crate) shared: Arc<RankShared>,
    pub(crate) instance: Arc<RankInstance>,
    pub(crate) work_model: WorkModel,
    pub(crate) virtual_mode: bool,
    pub(crate) binary: std::sync::Arc<pvr_progimage::ProgramBinary>,
    /// Configured nesting cap for completion continuations
    /// (`MachineConfig::continuation_depth`), enforced by `pvr-ampi`.
    pub(crate) continuation_depth: u32,
}

impl RankCtx {
    /// This rank's global index.
    pub fn rank(&self) -> RankId {
        self.rank
    }

    /// Total virtual ranks in the job.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// The PE the rank is currently scheduled on (changes after
    /// migration — ranks need never be aware of their placement, but the
    /// test suite and demos like to observe it).
    pub fn my_pe(&self) -> PeId {
        self.shared.current_pe.load(Ordering::Relaxed)
    }

    /// Current time in seconds (virtual in virtual mode).
    pub fn wtime(&self) -> f64 {
        self.shared.now_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Access to this rank's privatized globals.
    pub fn instance(&self) -> &RankInstance {
        &self.instance
    }

    /// The work model for converting kernel op counts into virtual time.
    pub fn work_model(&self) -> WorkModel {
        self.work_model
    }

    pub fn is_virtual_time(&self) -> bool {
        self.virtual_mode
    }

    /// The program binary this job runs — layout queries (function
    /// offsets, callables) for `MPI_Op` resolution.
    pub fn binary(&self) -> &std::sync::Arc<pvr_progimage::ProgramBinary> {
        &self.binary
    }

    fn call(&self, cmd: Command) -> Response {
        {
            let mut s = self.slot.lock();
            debug_assert!(s.cmd.is_none(), "re-entrant rank command");
            s.cmd = Some(cmd);
        }
        pvr_ult::yield_now();
        self.slot
            .lock()
            .resp
            .take()
            .expect("scheduler must respond before resuming a rank")
    }

    /// Post a message to another rank (buffered; returns immediately).
    pub fn send(&self, to: RankId, tag: u64, payload: Bytes) {
        match self.call(Command::Send { to, tag, payload }) {
            Response::Ack => {}
            r => panic!("unexpected response to Send: {r:?}"),
        }
    }

    /// Block until any message arrives.
    pub fn recv(&self) -> RtsMessage {
        match self.call(Command::Recv) {
            Response::Message(m) => m,
            r => panic!("unexpected response to Recv: {r:?}"),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<RtsMessage> {
        match self.call(Command::TryRecv) {
            Response::Message(m) => Some(m),
            Response::NoMessage => None,
            r => panic!("unexpected response to TryRecv: {r:?}"),
        }
    }

    /// Declare computed work (virtual mode; free no-op in real time).
    pub fn compute(&self, work: SimDuration) {
        match self.call(Command::Compute(work)) {
            Response::Ack => {}
            r => panic!("unexpected response to Compute: {r:?}"),
        }
    }

    /// Cooperatively yield to other ranks on this PE.
    pub fn yield_now(&self) {
        match self.call(Command::Yield) {
            Response::Ack => {}
            r => panic!("unexpected response to Yield: {r:?}"),
        }
    }

    /// Load-balancing sync point: blocks until every rank arrives, then
    /// the configured balancer may migrate ranks before all resume.
    pub fn at_sync(&self) {
        match self.call(Command::AtSync) {
            Response::Ack => {}
            r => panic!("unexpected response to AtSync: {r:?}"),
        }
    }

    /// Allocate zeroed memory from this rank's migratable (Isomalloc)
    /// heap. Freed only when the rank is torn down — matching how the
    /// apps use per-rank grids for the lifetime of a run.
    pub fn heap_alloc(&self, size: usize, align: usize) -> *mut u8 {
        match self.call(Command::AllocHeap { size, align }) {
            Response::Addr(a) => a as *mut u8,
            r => panic!("unexpected response to AllocHeap: {r:?}"),
        }
    }

    /// Allocate a zeroed `f64` slice on the rank's migratable heap. The
    /// returned slice lives until rank teardown; it stays valid across
    /// migrations (Isomalloc invariant).
    pub fn heap_alloc_f64s(&self, len: usize) -> &'static mut [f64] {
        let p = self.heap_alloc(len * 8, 8) as *mut f64;
        unsafe { std::slice::from_raw_parts_mut(p, len) }
    }

    /// The configured continuation nesting cap (how deep completion
    /// closures may recursively trigger further completion closures).
    pub fn continuation_depth(&self) -> u32 {
        self.continuation_depth
    }

    /// Post a nonblocking send. Returns the request id; completion is
    /// observed via [`RankCtx::req_wait`] / [`RankCtx::req_test`].
    pub fn req_post_send(&self, to: RankId, tag: u64, payload: Bytes) -> u64 {
        match self.call(Command::ReqPostSend { to, tag, payload }) {
            Response::ReqId(id) => id,
            r => panic!("unexpected response to ReqPostSend: {r:?}"),
        }
    }

    /// Post a nonblocking receive matched at delivery time by `spec`.
    pub fn req_post_recv(&self, spec: MatchSpec) -> u64 {
        match self.call(Command::ReqPostRecv { spec }) {
            Response::ReqId(id) => id,
            r => panic!("unexpected response to ReqPostRecv: {r:?}"),
        }
    }

    /// Post an already-complete table entry for a receive the caller
    /// matched against its own unexpected queue (see
    /// [`Command::ReqPostLocal`]).
    pub fn req_post_local(&self) -> u64 {
        match self.call(Command::ReqPostLocal) {
            Response::ReqId(id) => id,
            r => panic!("unexpected response to ReqPostLocal: {r:?}"),
        }
    }

    /// Block until the identified requests complete (all, or any one if
    /// `any`), reaping and returning the completed subset. `cont` tags
    /// the completions as continuation-delivered for the tallies.
    pub fn req_wait(&self, ids: Vec<u64>, any: bool, cont: bool) -> Vec<(u64, Option<RtsMessage>)> {
        match self.call(Command::ReqWait { ids, any, cont }) {
            Response::ReqOutcomes(v) => v,
            r => panic!("unexpected response to ReqWait: {r:?}"),
        }
    }

    /// Reap whichever of the identified requests have already completed;
    /// never blocks.
    pub fn req_test(&self, ids: Vec<u64>, cont: bool) -> Vec<(u64, Option<RtsMessage>)> {
        match self.call(Command::ReqTest { ids, cont }) {
            Response::ReqOutcomes(v) => v,
            r => panic!("unexpected response to ReqTest: {r:?}"),
        }
    }

    /// Free a previous [`RankCtx::heap_alloc`] (`size` must match the
    /// allocation). With `MachineBuilder::guards(true)` the freed range
    /// is poisoned and audited: a double free or a later write through
    /// the stale pointer ends the run with a clean error naming this
    /// rank rather than corrupting another rank's memory.
    pub fn heap_free(&self, ptr: *mut u8, size: usize) {
        match self.call(Command::FreeHeap {
            addr: ptr as usize,
            size,
        }) {
            Response::Ack => {}
            r => panic!("unexpected response to FreeHeap: {r:?}"),
        }
    }
}
