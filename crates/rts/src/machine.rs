//! The machine: topology + PEs + ranks + scheduler + migration + LB.
//!
//! One `Machine` is a whole simulated job (possibly many nodes/processes/
//! PEs), driven deterministically by one OS thread. See the crate docs
//! for the real-time vs virtual-time distinction.

use crate::command::{Command, RankCtx, RankShared, Response, Slot, WorkModel};
use crate::lb::{LbStats, LoadBalancer};
use crate::location::LocationManager;
use crate::message::RtsMessage;
use crate::pe::PeState;
use crate::rank::{RankState, RankStatus};
pub use crate::stats::{FaultTallies, HardeningTallies, LbRecord, MigrationRecord, RunReport};
use crate::{PeId, RankId};
use parking_lot::Mutex;
use pvr_des::{EventQueue, FaultPlan, FaultStream, NetworkModel, SimDuration, SimTime, Topology};
use pvr_isomalloc::{GuardViolation, IsoPtr, RankMemory, Region, RegionKind};
use pvr_privatize::methods::Options as MethodOptions;
use pvr_privatize::{
    create_privatizer, probe_method, Capability, Method, PrivatizeEnv, PrivatizeError, Privatizer,
    RunShape, Toolchain,
};
use pvr_progimage::{ProgramBinary, SharedFs};
use pvr_trace::{ArenaTrip, EventKind, ProbeVerdict, Tracer, NO_RANK};
use pvr_ult::{Backend, StackMem, Ult};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How time passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Wall-clock: real execution, measured externally (Figs. 5–8).
    RealTime,
    /// Discrete-event virtual time (Fig. 9 / Table 2 scaling runs).
    Virtual,
}

/// Runtime errors.
#[derive(Debug)]
pub enum RtsError {
    Privatize(PrivatizeError),
    /// All live ranks are blocked and no event can wake them.
    Deadlock { waiting: Vec<RankId> },
    /// A rank's body panicked.
    RankPanicked { rank: RankId, message: String },
    /// A rank yielded outside the command protocol.
    Protocol { rank: RankId, detail: String },
    /// Invalid migration request.
    BadMigration { rank: RankId, detail: String },
    /// A user reduction operator had to be applied on a PE hosting no
    /// virtual ranks — under PIEglobals there is no image base to anchor
    /// the function-pointer offset (§3.3's documented runtime error).
    EmptyPeReduction { pe: PeId },
    /// Invalid machine configuration, caught at build time.
    Config { detail: String },
    /// The reliable-delivery layer exhausted its retransmit budget for a
    /// message that was never delivered.
    DeliveryFailed {
        from: RankId,
        to: RankId,
        seq: u64,
        attempts: u32,
    },
    /// A ULT stack red zone was found clobbered at a guard check: the
    /// rank overflowed (or scribbled past) its stack. The corrupt stack
    /// is never resumed or unwound.
    StackGuard { rank: RankId, detail: String },
    /// The Isomalloc arena guard caught an invalid free or a write
    /// through a stale pointer in this rank's heap.
    ArenaGuard { rank: RankId, detail: String },
    /// The segment-integrity audit found `rank`'s privatized data
    /// segment modified outside its owner's execution — a cross-rank
    /// global bleed, attributed to the rank on the PE when it was
    /// detected ([`crate::RankId::MAX`] when no rank had run since).
    SegmentBleed { rank: RankId, writer: RankId },
    /// Startup exhausted the method fallback chain: every candidate was
    /// probed infeasible or failed mid-startup.
    NoFeasibleMethod { detail: String },
}

impl fmt::Display for RtsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtsError::Privatize(e) => write!(f, "privatization: {e}"),
            RtsError::Deadlock { waiting } => {
                write!(f, "deadlock: ranks {waiting:?} blocked forever")
            }
            RtsError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            RtsError::Protocol { rank, detail } => write!(f, "rank {rank}: {detail}"),
            RtsError::BadMigration { rank, detail } => {
                write!(f, "cannot migrate rank {rank}: {detail}")
            }
            RtsError::EmptyPeReduction { pe } => write!(
                f,
                "PE {pe} has no resident virtual ranks: cannot translate a user \
                 reduction operator's offset to an address under PIEglobals"
            ),
            RtsError::Config { detail } => write!(f, "invalid configuration: {detail}"),
            RtsError::DeliveryFailed {
                from,
                to,
                seq,
                attempts,
            } => write!(
                f,
                "message {from}->{to} seq {seq} undeliverable after {attempts} attempts"
            ),
            RtsError::StackGuard { rank, detail } => {
                write!(f, "rank {rank} stack guard tripped: {detail}")
            }
            RtsError::ArenaGuard { rank, detail } => {
                write!(f, "rank {rank} heap guard tripped: {detail}")
            }
            RtsError::SegmentBleed { rank, writer } => {
                if *writer == RankId::MAX {
                    write!(
                        f,
                        "rank {rank}'s privatized data segment changed outside any \
                         rank's execution (cross-rank global bleed, writer unknown)"
                    )
                } else {
                    write!(
                        f,
                        "rank {rank}'s privatized data segment was modified while rank \
                         {writer} was running (cross-rank global bleed)"
                    )
                }
            }
            RtsError::NoFeasibleMethod { detail } => {
                write!(f, "no feasible privatization method: {detail}")
            }
        }
    }
}

impl std::error::Error for RtsError {}

impl From<PrivatizeError> for RtsError {
    fn from(e: PrivatizeError) -> Self {
        RtsError::Privatize(e)
    }
}

/// Virtual-mode events.
enum Event {
    Deliver {
        msg: RtsMessage,
        dest_pe: PeId,
        forwarded: bool,
    },
    PeWake {
        pe: PeId,
    },
    /// Reliable delivery: an acknowledgement for `(from, to, seq)`
    /// arrived back at the sender.
    Ack {
        from: RankId,
        to: RankId,
        seq: u64,
    },
    /// Reliable delivery: the retransmit timer armed at transmission
    /// `attempt` of `(from, to, seq)` fired.
    Retransmit {
        from: RankId,
        to: RankId,
        seq: u64,
        attempt: u32,
    },
}

/// Per-(src,dst) receive state of the reliable-delivery layer: in-order
/// exactly-once delivery via a reorder buffer keyed by sequence number.
struct PairRecv {
    /// Next sequence number to release to the application (seqs are
    /// assigned from 1).
    next_expected: u64,
    /// Out-of-order arrivals awaiting the gap to fill.
    pending: std::collections::BTreeMap<u64, RtsMessage>,
}

impl Default for PairRecv {
    fn default() -> Self {
        PairRecv {
            next_expected: 1,
            pending: Default::default(),
        }
    }
}

/// Sender/receiver state of the reliable-delivery layer, active when a
/// [`FaultPlan`] is attached to the network model (virtual clock only).
///
/// This state intentionally lives *outside* rank memory: it rolls
/// forward across checkpoint rollback, so replayed application sends get
/// fresh sequence numbers and both endpoints stay consistent.
struct ReliableState {
    plan: FaultPlan,
    /// Base retransmission timeout added on top of the modeled path cost.
    base_rto: SimDuration,
    /// Total transmission attempts allowed per message (1 original +
    /// `max_attempts - 1` retransmits).
    max_attempts: u32,
    /// Next sequence number per (src, dst) pair.
    send_seq: std::collections::HashMap<(RankId, RankId), u64>,
    /// Unacknowledged messages by (src, dst, seq).
    inflight: std::collections::HashMap<(RankId, RankId, u64), RtsMessage>,
    /// Receive-side dedup/reorder state per (src, dst) pair.
    recv: std::collections::HashMap<(RankId, RankId), PairRecv>,
    /// Monotonic ack instance counter (keys ack fault decisions).
    ack_counter: u64,
}

/// One rank's entry in a coordinated checkpoint. The image is held
/// twice — at the rank's home PE and at that PE's buddy — so a single
/// PE failure cannot lose it.
struct CheckpointEntry {
    image: pvr_isomalloc::MigrationBuffer,
    buddy_image: pvr_isomalloc::MigrationBuffer,
    /// Suspended stack pointer observed together with the image.
    sp: Option<usize>,
    /// Checksum of the image at pack time, verified before restore.
    checksum: u64,
    /// PE holding `image`.
    primary_pe: PeId,
    /// PE holding `buddy_image`.
    buddy_pe: PeId,
}

/// A coordinated checkpoint: one entry per rank, taken at an LB barrier.
struct Checkpoint {
    entries: Vec<CheckpointEntry>,
}

/// Privatizers and rank states produced by one startup attempt.
type BuiltJob = (Vec<Box<dyn Privatizer>>, Vec<RankState>);

/// Whether a startup error is a capacity/environment failure the
/// fallback chain may degrade past (vs. a bug that must surface).
fn degradable(e: &RtsError) -> bool {
    matches!(
        e,
        RtsError::Privatize(PrivatizeError::Unsupported { .. })
            | RtsError::Privatize(PrivatizeError::Dl(
                pvr_progimage::DlError::NamespaceExhausted { .. }
            ))
            | RtsError::Privatize(PrivatizeError::Fs(pvr_progimage::FsError::NoSpace { .. }))
    )
}

/// Map an arena guard violation to its trace-event kind.
fn arena_trip_kind(v: &GuardViolation) -> ArenaTrip {
    match v {
        GuardViolation::DoubleFree { .. } => ArenaTrip::DoubleFree,
        GuardViolation::UseAfterFree { .. } => ArenaTrip::UseAfterFree,
        GuardViolation::ForeignPointer { .. } => ArenaTrip::ForeignPointer,
    }
}

/// FNV-1a over a byte slice — the segment-audit checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Checksum `rank`'s privatized data segment, whichever per-process
/// privatizer owns it (`None` for methods without per-rank segments).
fn segment_checksum_in(privatizers: &[Box<dyn Privatizer>], rank: usize) -> Option<u64> {
    privatizers.iter().find_map(|p| {
        p.rank_data_segment(rank).map(|(base, len)| {
            let bytes = unsafe { std::slice::from_raw_parts(base, len) };
            fnv1a(bytes)
        })
    })
}

/// Builder for a [`Machine`].
pub struct MachineBuilder {
    topology: Topology,
    method: Method,
    options: MethodOptions,
    binary: Arc<ProgramBinary>,
    toolchain: Toolchain,
    shared_fs: Option<Arc<Mutex<SharedFs>>>,
    vp_ratio: usize,
    clock: ClockMode,
    network: NetworkModel,
    balancer: Option<Box<dyn LoadBalancer>>,
    stack_size: usize,
    work_model: WorkModel,
    ult_backend: Backend,
    code_dedup_migration: bool,
    checkpoint_period: u32,
    inject_fault_at_lb_step: Option<u32>,
    inject_pe_failure: Option<(u32, PeId)>,
    retransmit_base: SimDuration,
    retransmit_max_attempts: u32,
    tracer: Option<Arc<Tracer>>,
    fallback: bool,
    fallback_chain: Vec<Method>,
    guards: bool,
}

impl MachineBuilder {
    pub fn new(binary: Arc<ProgramBinary>) -> MachineBuilder {
        MachineBuilder {
            topology: Topology::smp(1),
            method: Method::PieGlobals,
            options: MethodOptions::default(),
            binary,
            toolchain: Toolchain::default(),
            shared_fs: Some(Arc::new(Mutex::new(SharedFs::new()))),
            vp_ratio: 1,
            clock: ClockMode::RealTime,
            network: NetworkModel::infiniband(),
            balancer: None,
            stack_size: 128 * 1024,
            work_model: WorkModel::default(),
            ult_backend: Backend::native(),
            code_dedup_migration: false,
            checkpoint_period: 0,
            inject_fault_at_lb_step: None,
            inject_pe_failure: None,
            retransmit_base: SimDuration::from_micros(20),
            retransmit_max_attempts: 10,
            tracer: None,
            fallback: false,
            fallback_chain: vec![Method::PipGlobals, Method::FsGlobals, Method::PieGlobals],
            guards: false,
        }
    }

    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    pub fn method(mut self, m: Method) -> Self {
        self.method = m;
        self
    }

    pub fn method_options(mut self, o: MethodOptions) -> Self {
        self.options = o;
        self
    }

    pub fn toolchain(mut self, t: Toolchain) -> Self {
        self.toolchain = t;
        self
    }

    /// Virtual ranks per PE (overdecomposition ratio).
    pub fn vp_ratio(mut self, r: usize) -> Self {
        assert!(r > 0);
        self.vp_ratio = r;
        self
    }

    pub fn clock(mut self, c: ClockMode) -> Self {
        self.clock = c;
        self
    }

    pub fn network(mut self, n: NetworkModel) -> Self {
        self.network = n;
        self
    }

    /// Mount (or unmount) a shared filesystem for this job.
    pub fn shared_fs(mut self, fs: Option<Arc<Mutex<SharedFs>>>) -> Self {
        self.shared_fs = fs;
        self
    }

    pub fn balancer(mut self, b: Box<dyn LoadBalancer>) -> Self {
        self.balancer = Some(b);
        self
    }

    pub fn stack_size(mut self, s: usize) -> Self {
        self.stack_size = s.max(16 * 1024);
        self
    }

    pub fn work_model(mut self, w: WorkModel) -> Self {
        self.work_model = w;
        self
    }

    pub fn ult_backend(mut self, b: Backend) -> Self {
        self.ult_backend = b;
        self
    }

    /// The paper's future-work migration optimization: skip the rank's
    /// code-segment copies when migrating (they are bitwise identical
    /// across ranks and can be re-duplicated from the local image).
    pub fn code_dedup_migration(mut self, on: bool) -> Self {
        self.code_dedup_migration = on;
        self
    }

    /// Take a coordinated checkpoint of every rank's memory at every
    /// `n`-th load-balancing sync point (0 = off). This is the
    /// checkpoint/restart fault-tolerance scheme Isomalloc migratability
    /// enables (§2.1): rank memory is packed exactly like a migration.
    pub fn checkpoint_period(mut self, n: u32) -> Self {
        self.checkpoint_period = n;
        self
    }

    /// Failure injection: at LB step `k`, simulate a soft memory fault
    /// (all rank memories corrupted) and recover from the most recent
    /// checkpoint. Requires `checkpoint_period > 0`.
    pub fn inject_fault_at_lb_step(mut self, k: u32) -> Self {
        self.inject_fault_at_lb_step = Some(k);
        self
    }

    /// Failure injection: at LB step `k`, kill PE `pe` outright. The
    /// PE's resident ranks lose their memory; buddy checkpointing
    /// restores them onto surviving PEs and the job shrinks to the
    /// remaining PEs. Requires `checkpoint_period > 0`, a migratable
    /// privatization method, and at least two PEs.
    pub fn inject_pe_failure_at_lb_step(mut self, k: u32, pe: PeId) -> Self {
        self.inject_pe_failure = Some((k, pe));
        self
    }

    /// Tune the reliable-delivery layer (active when the network model
    /// carries a fault plan): `base_timeout` is added to the modeled
    /// round-trip estimate for the first retransmit timer (doubling each
    /// attempt), and `max_attempts` bounds total transmissions per
    /// message before the run fails with [`RtsError::DeliveryFailed`].
    pub fn retransmit_params(mut self, base_timeout: SimDuration, max_attempts: u32) -> Self {
        self.retransmit_base = base_timeout;
        self.retransmit_max_attempts = max_attempts;
        self
    }

    /// Attach an event recorder (see `pvr-trace`). The tracer still has
    /// to be enabled to record; with no tracer attached — the default —
    /// every instrumentation hook reduces to a branch on `None`.
    pub fn tracer(mut self, t: Arc<Tracer>) -> Self {
        self.tracer = Some(t);
        self
    }

    /// Enable graceful degradation: before any rank is created, every
    /// candidate method (the requested one, then the fallback chain) is
    /// capability-probed against the environment and run shape, and an
    /// infeasible method degrades to the next feasible one. Probes are
    /// conservative predictions, so a candidate that passes its probe but
    /// fails *mid-startup* (rank N's `dlmopen` or FS copy fails) also
    /// degrades: already-created ranks are torn down, partially-copied
    /// FS binaries deleted, and the next candidate is tried.
    ///
    /// Off by default: a strict build surfaces the method's own error
    /// (`NamespaceExhausted`, `NoSpace`, ...) exactly as configured.
    pub fn fallback(mut self, on: bool) -> Self {
        self.fallback = on;
        self
    }

    /// Set the method fallback chain (and enable degradation). Candidates
    /// are tried in order after the requested method; the default chain
    /// is `PIPglobals → FSglobals → PIEglobals`, the paper's methods in
    /// decreasing startup cost / increasing portability order. A chain
    /// entry the environment can *never* run is rejected at build time.
    pub fn fallback_chain(mut self, chain: Vec<Method>) -> Self {
        self.fallback_chain = chain;
        self.fallback = true;
        self
    }

    /// Enable the memory-safety guards: canary red zones on every ULT
    /// stack (checked at context switches), Isomalloc arena poisoning
    /// with double-free/use-after-free detection, and a segment-integrity
    /// audit that detects cross-rank global bleed. Guard trips end the
    /// run with clean, rank-attributed errors instead of undefined
    /// behavior. Off by default (zero overhead).
    pub fn guards(mut self, on: bool) -> Self {
        self.guards = on;
        self
    }

    /// Instantiate the job: one privatizer per OS process, then all
    /// ranks. This is the unit the startup experiment (Fig. 5) times.
    pub fn build(
        self,
        body: Arc<dyn Fn(RankCtx) + Send + Sync + 'static>,
    ) -> Result<Machine, RtsError> {
        let topo = self.topology;
        let n_pes = topo.total_pes();
        let n_ranks = n_pes * self.vp_ratio;

        // Fault-injection configuration is rejected here, at build time,
        // instead of surfacing as a mid-run failure.
        let config_err = |detail: String| Err(RtsError::Config { detail });
        if (self.inject_fault_at_lb_step.is_some() || self.inject_pe_failure.is_some())
            && self.checkpoint_period == 0
        {
            return config_err(
                "fault injection requires checkpoint_period > 0 (no checkpoint would be \
                 available to recover from)"
                    .into(),
            );
        }
        if let Some(k) = self.inject_fault_at_lb_step {
            if k == 0 {
                return config_err("inject_fault_at_lb_step: LB steps are 1-based".into());
            }
        }
        if let Some((k, pe)) = self.inject_pe_failure {
            if k == 0 {
                return config_err("inject_pe_failure_at_lb_step: LB steps are 1-based".into());
            }
            if pe >= n_pes {
                return config_err(format!(
                    "inject_pe_failure_at_lb_step: PE {pe} out of range (job has {n_pes} PEs)"
                ));
            }
            if n_pes < 2 {
                return config_err(
                    "inject_pe_failure_at_lb_step: surviving on fewer PEs needs at least 2 PEs"
                        .into(),
                );
            }
        }
        if let Some(plan) = self.network.fault_plan() {
            if let Err(e) = plan.validate() {
                return config_err(format!("network fault plan: {e}"));
            }
            if self.clock == ClockMode::RealTime {
                return config_err(
                    "a network fault plan requires ClockMode::Virtual (reliable delivery \
                     is event-driven)"
                        .into(),
                );
            }
            if self.retransmit_max_attempts == 0 {
                return config_err("retransmit_params: max_attempts must be >= 1".into());
            }
        }
        if self.guards && self.method == Method::Unprivatized {
            return config_err(
                "guards: the stack/arena/segment guards assume privatized per-rank state; \
                 method `baseline` (Unprivatized) shares every global, so guard trips could \
                 never be attributed to a rank — pick a privatizing method or disable guards"
                    .into(),
            );
        }
        if self.fallback && self.fallback_chain.is_empty() {
            return config_err(
                "fallback_chain: the fallback chain must name at least one method".into(),
            );
        }

        let mk_env = || {
            PrivatizeEnv::new(self.binary.clone())
                .with_toolchain(self.toolchain)
                .with_pes(topo.pes_per_process)
                .with_shared_fs(self.shared_fs.clone())
                .with_concurrent_processes(topo.total_processes())
        };

        // Candidate methods, in trial order: the requested method, then
        // the fallback chain (strict mode: the requested method only).
        let mut candidates: Vec<Method> = vec![self.method];
        if self.fallback {
            for &m in &self.fallback_chain {
                if !candidates.contains(&m) {
                    candidates.push(m);
                }
            }
        }

        // Capability-probe pass (fallback mode): rate every candidate
        // before any rank exists. A *chain* entry the environment can
        // never run is a configuration error — the user named a method
        // that could not possibly back them up; a shape-dependent
        // ResourceLimited verdict is exactly what the chain is for.
        let mut hardening = HardeningTallies::default();
        let mut verdicts: Vec<Capability> = Vec::new();
        if self.fallback {
            for &m in &candidates {
                let cap = probe_method(m, &mk_env(), RunShape {
                    ranks_per_process: topo.pes_per_process * self.vp_ratio,
                    total_ranks: n_ranks,
                });
                if m != self.method && cap.is_unsupported() {
                    return config_err(format!(
                        "fallback_chain: {m} can never start in this environment ({cap})"
                    ));
                }
                if let Some(t) = &self.tracer {
                    let verdict = match &cap {
                        Capability::Feasible => ProbeVerdict::Feasible,
                        Capability::ResourceLimited { .. } => ProbeVerdict::ResourceLimited,
                        Capability::Unsupported { .. } => ProbeVerdict::Unsupported,
                    };
                    t.record(
                        0,
                        NO_RANK,
                        0,
                        EventKind::MethodProbe {
                            method: m.name(),
                            verdict,
                        },
                    );
                }
                hardening.probes += 1;
                verdicts.push(cap);
            }
        }

        let location = LocationManager::new_block(n_ranks, n_pes);
        // Scope the tracer over instantiation so privatizer startup work
        // (segment copies, GOT fixups) lands in the trace.
        let trace_scope = self
            .tracer
            .as_ref()
            .map(|t| pvr_trace::ThreadScope::install(t.clone()));

        // Try one candidate end-to-end: one privatizer per simulated OS
        // process, then every rank. On failure the locals drop right here
        // — never-started ULTs detach cleanly and FSglobals' Drop deletes
        // every binary copy it created — so a candidate that dies at rank
        // N leaves no residue for the next candidate.
        let attempt = |method: Method| -> Result<BuiltJob, RtsError> {
            let mut privatizers: Vec<Box<dyn Privatizer>> = Vec::new();
            for _proc in 0..topo.total_processes() {
                privatizers.push(create_privatizer(method, mk_env(), self.options.clone())?);
            }
            let mut ranks: Vec<RankState> = Vec::with_capacity(n_ranks);
            for r in 0..n_ranks {
                let pe = location.lookup(r);
                if self.tracer.is_some() {
                    pvr_trace::set_context(pe, r as u32, 0);
                }
                let proc = topo.process_of_pe(pe);
                let mut mem = RankMemory::new();
                let instance = Arc::new(privatizers[proc].instantiate_rank(r, &mut mem)?);
                if self.guards {
                    mem.heap().set_guard(true);
                }

                // ULT stack inside rank memory → packed on migration.
                let stack_region = Region::new_zeroed(RegionKind::Stack, self.stack_size);
                let stack_ptr = stack_region.base_mut();
                mem.add_region(stack_region);
                let stack = unsafe { StackMem::from_raw(stack_ptr, self.stack_size) };

                let slot = Arc::new(Mutex::new(Slot::default()));
                let shared = Arc::new(RankShared {
                    current_pe: AtomicUsize::new(pe),
                    now_ns: AtomicU64::new(0),
                });
                let ctx = RankCtx {
                    rank: r,
                    n_ranks,
                    slot: slot.clone(),
                    shared: shared.clone(),
                    instance: instance.clone(),
                    work_model: self.work_model,
                    virtual_mode: self.clock == ClockMode::Virtual,
                    binary: self.binary.clone(),
                };
                let body = body.clone();
                let mut ult = Ult::with_backend(self.ult_backend, stack, move || body(ctx));
                if self.guards {
                    ult.install_stack_guard();
                }

                ranks.push(RankState {
                    ult: Some(ult),
                    memory: mem,
                    instance,
                    slot,
                    shared,
                    status: RankStatus::Ready,
                    location: pe,
                    mailbox: Default::default(),
                    load_since_lb: SimDuration::ZERO,
                    total_load: SimDuration::ZERO,
                    messages_sent: 0,
                    messages_received: 0,
                    migrations: 0,
                });
            }
            Ok((privatizers, ranks))
        };

        let mut built: Option<(Method, BuiltJob)> = None;
        let mut failures: Vec<String> = Vec::new();
        for (i, &cand) in candidates.iter().enumerate() {
            // Record a degradation hop (event + tally) from a failed
            // candidate to the next one in line.
            let note_fallback = |hardening: &mut HardeningTallies| {
                if i + 1 < candidates.len() {
                    if let Some(t) = &self.tracer {
                        t.record(
                            0,
                            NO_RANK,
                            0,
                            EventKind::MethodFallback {
                                from: cand.name(),
                                to: candidates[i + 1].name(),
                            },
                        );
                    }
                    hardening.fallbacks += 1;
                }
            };
            if let Some(cap) = verdicts.get(i) {
                if !cap.is_feasible() {
                    // Probe-predicted infeasibility: skip without paying
                    // for a doomed startup.
                    failures.push(format!("{cand}: {cap}"));
                    note_fallback(&mut hardening);
                    continue;
                }
            }
            match attempt(cand) {
                Ok(job) => {
                    built = Some((cand, job));
                    break;
                }
                Err(e) if self.fallback && degradable(&e) => {
                    // The probe passed but startup still failed (probes
                    // are conservative predictions). `attempt` already
                    // tore everything down; degrade.
                    failures.push(format!("{cand}: {e}"));
                    note_fallback(&mut hardening);
                }
                Err(e) => return Err(e),
            }
        }
        drop(trace_scope);
        let Some((landed, (privatizers, ranks))) = built else {
            return Err(RtsError::NoFeasibleMethod {
                detail: failures.join("; "),
            });
        };

        if self.inject_pe_failure.is_some() && !privatizers[0].supports_migration() {
            return Err(RtsError::Config {
                detail: format!(
                    "inject_pe_failure_at_lb_step: {landed} does not support migration, so the \
                     failed PE's ranks cannot be restored onto survivors"
                ),
            });
        }

        // Segment-integrity baseline: one checksum per rank's privatized
        // data segment (None for methods without per-rank segments).
        let segment_baseline: Vec<Option<u64>> = if self.guards {
            (0..n_ranks)
                .map(|r| segment_checksum_in(&privatizers, r))
                .collect()
        } else {
            Vec::new()
        };

        let mut pes: Vec<PeState> = (0..n_pes).map(|_| PeState::default()).collect();
        for r in 0..n_ranks {
            pes[location.lookup(r)].ready.push_back(r);
        }

        // Per-PE hierarchical-local-storage blocks (MPC HLS): resolved
        // once so the context-switch path pays a plain load.
        let pe_hls_blocks: Vec<*mut u8> = (0..n_pes)
            .map(|pe| {
                let proc = topo.process_of_pe(pe);
                let local = pe - topo.pes_of_process(proc).start;
                privatizers[proc]
                    .pe_block(local)
                    .unwrap_or(std::ptr::null_mut())
            })
            .collect();

        Ok(Machine {
            topology: topo,
            clock: self.clock,
            network: self.network,
            balancer: self.balancer,
            privatizers,
            location,
            ranks,
            pes,
            queue: EventQueue::new(),
            done_count: 0,
            at_sync_count: 0,
            total_switches: 0,
            messages_delivered: 0,
            lb_steps: 0,
            migrations: Vec::new(),
            epoch: Instant::now(),
            pe_hls_blocks,
            lb_history: Vec::new(),
            comm_bytes: std::collections::HashMap::new(),
            code_dedup_migration: self.code_dedup_migration,
            checkpoint_period: self.checkpoint_period,
            inject_fault_at_lb_step: self.inject_fault_at_lb_step,
            inject_pe_failure: self.inject_pe_failure,
            last_checkpoint: None,
            alive: vec![true; n_pes],
            reliable: self.network.fault_plan().map(|plan| ReliableState {
                plan: *plan,
                base_rto: self.retransmit_base,
                max_attempts: self.retransmit_max_attempts,
                send_seq: Default::default(),
                inflight: Default::default(),
                recv: Default::default(),
                ack_counter: 0,
            }),
            tallies: FaultTallies::default(),
            tracer: self.tracer,
            guards: self.guards,
            method_requested: self.method,
            hardening,
            segment_baseline,
            last_ran: None,
        })
    }
}

enum StopReason {
    BlockedRecv,
    AtSync,
    Yielded,
    Done,
}

/// A running (or runnable) job.
pub struct Machine {
    pub topology: Topology,
    clock: ClockMode,
    network: NetworkModel,
    balancer: Option<Box<dyn LoadBalancer>>,
    privatizers: Vec<Box<dyn Privatizer>>,
    location: LocationManager,
    ranks: Vec<RankState>,
    pes: Vec<PeState>,
    queue: EventQueue<Event>,
    done_count: usize,
    at_sync_count: usize,
    total_switches: u64,
    messages_delivered: u64,
    lb_steps: u32,
    migrations: Vec<MigrationRecord>,
    epoch: Instant,
    /// Per-PE HLS block (null when the method has none); installed at
    /// each context switch alongside the rank's registers.
    pe_hls_blocks: Vec<*mut u8>,
    code_dedup_migration: bool,
    checkpoint_period: u32,
    inject_fault_at_lb_step: Option<u32>,
    inject_pe_failure: Option<(u32, PeId)>,
    /// Bytes exchanged per (from, to) rank pair since the last LB step.
    comm_bytes: std::collections::HashMap<(RankId, RankId), u64>,
    lb_history: Vec<LbRecord>,
    /// Most recent coordinated checkpoint (buddy-replicated per rank).
    last_checkpoint: Option<Checkpoint>,
    /// Liveness per PE; a failed PE stays dead for the rest of the run.
    alive: Vec<bool>,
    /// Reliable-delivery state, present when the network carries a
    /// fault plan.
    reliable: Option<ReliableState>,
    /// Fault/recovery tallies, mirrored into the [`RunReport`].
    tallies: FaultTallies,
    tracer: Option<Arc<Tracer>>,
    /// Memory-safety guards active (stack red zones, arena poisoning,
    /// segment audits).
    guards: bool,
    /// The method the configuration asked for (`method()` reports what
    /// actually landed).
    method_requested: Method,
    /// Probe/fallback/guard tallies, mirrored into the [`RunReport`].
    hardening: HardeningTallies,
    /// Per-rank privatized-data-segment checksums (empty with guards
    /// off; `None` entries for methods without per-rank segments).
    segment_baseline: Vec<Option<u64>>,
    /// The rank most recently resumed — the attributed writer when a
    /// barrier-time segment audit finds bleed.
    last_ran: Option<RankId>,
}

impl Machine {
    pub fn n_ranks(&self) -> usize {
        self.ranks.len()
    }

    pub fn n_pes(&self) -> usize {
        self.pes.len()
    }

    pub fn method(&self) -> Method {
        self.privatizers[0].method()
    }

    /// The method the configuration asked for; differs from
    /// [`Machine::method`] exactly when the fallback chain degraded.
    pub fn method_requested(&self) -> Method {
        self.method_requested
    }

    /// Probe/fallback/guard tallies accumulated so far.
    pub fn hardening_stats(&self) -> HardeningTallies {
        self.hardening
    }

    /// Test/experiment hook: scribble over the base of `rank`'s ULT
    /// stack region — where the red zone canaries live — simulating a
    /// stack overflow for the guard to catch at the next guard check.
    pub fn corrupt_rank_stack(&mut self, rank: RankId) {
        let target: Option<(*mut u8, usize)> = self.ranks[rank]
            .memory
            .regions()
            .find(|reg| reg.kind() == RegionKind::Stack)
            .map(|reg| (reg.base_mut(), reg.len()));
        if let Some((base, len)) = target {
            let n = (pvr_ult::RED_ZONE_WORDS * 8).min(len);
            unsafe { std::ptr::write_bytes(base, 0xAB, n) };
        }
    }

    /// Test/experiment hook: flip one byte inside `rank`'s privatized
    /// data segment from outside any rank's execution — simulating
    /// cross-rank global bleed for the segment audit to catch.
    pub fn corrupt_rank_segment(&mut self, rank: RankId) {
        if let Some((base, len)) = self
            .privatizers
            .iter()
            .find_map(|p| p.rank_data_segment(rank))
        {
            if len > 0 {
                unsafe {
                    let p = base as *mut u8;
                    *p = (*p).wrapping_add(1);
                }
            }
        }
    }

    /// The attached event recorder, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Nanosecond timestamp for trace events on `pe`: the virtual clock
    /// in virtual mode, wall time since the machine epoch otherwise.
    fn trace_now_ns(&self, pe: PeId) -> u64 {
        match self.clock {
            ClockMode::Virtual => self.pes[pe].clock.nanos(),
            ClockMode::RealTime => self.epoch.elapsed().as_nanos() as u64,
        }
    }

    /// Record a scheduler-side trace event. Free (one `Option` branch)
    /// when no tracer is attached.
    #[inline]
    fn trace(&self, pe: PeId, rank: u32, kind: EventKind) {
        if let Some(t) = &self.tracer {
            t.record(pe, rank, self.trace_now_ns(pe), kind);
        }
    }

    /// Install the tracer as this thread's emission target for the
    /// duration of a public entry point, so hooks in the library crates
    /// (`pvr-ampi`, `pvr-privatize`, `pvr-isomalloc`) reach it.
    fn trace_scope(&self) -> Option<pvr_trace::ThreadScope> {
        self.tracer
            .as_ref()
            .map(|t| pvr_trace::ThreadScope::install(t.clone()))
    }

    /// Simulated I/O charged during startup (FSglobals) — add to measured
    /// build time for the Fig. 5 startup comparison.
    pub fn simulated_startup_cost(&self) -> Duration {
        self.privatizers
            .iter()
            .map(|p| p.simulated_startup_cost())
            .sum()
    }

    /// Bytes of segment copies per rank (startup accounting).
    pub fn per_rank_copied_bytes(&self) -> usize {
        self.privatizers[0].per_rank_copied_bytes()
    }

    pub fn location_of(&self, rank: RankId) -> PeId {
        self.location.lookup(rank)
    }

    pub fn resident_count(&self, pe: PeId) -> usize {
        self.location.resident_count(pe)
    }

    /// Rank memory footprint (for reports/tests).
    pub fn rank_migration_bytes(&self, rank: RankId) -> usize {
        self.ranks[rank].migration_bytes()
    }

    /// Access a privatizer (e.g. for `pieglobalsfind` queries).
    pub fn privatizer(&self, process: usize) -> &dyn Privatizer {
        self.privatizers[process].as_ref()
    }

    /// A rank's privatization instance (demos/tests: resolving the
    /// rank's view of a global from outside the rank).
    pub fn rank_instance(&self, rank: RankId) -> &Arc<pvr_privatize::RankInstance> {
        &self.ranks[rank].instance
    }

    /// Resolve a user reduction operator (encoded as a code-segment
    /// offset) for application *on a specific PE* — what the runtime does
    /// when combining reduction messages. Under PIEglobals every rank has
    /// a distinct code copy, so the offset must be anchored to the base
    /// of some rank resident on `pe`; a PE hosting no ranks raises the
    /// runtime error the paper describes instead of silently forwarding.
    pub fn resolve_op_on_pe(
        &self,
        pe: PeId,
        offset: usize,
    ) -> Result<pvr_progimage::spec::Callable, RtsError> {
        if self.method() == Method::PieGlobals && self.location.resident_count(pe) == 0 {
            return Err(RtsError::EmptyPeReduction { pe });
        }
        let proc = self.topology.process_of_pe(pe);
        self.privatizers[proc]
            .callable_for_offset(offset)
            .ok_or(RtsError::Protocol {
                rank: usize::MAX,
                detail: format!("no callable at code offset {offset}"),
            })
    }

    /// Drive one rank until it blocks, parks, yields, or completes —
    /// used by benchmark harnesses that need a rank in a known state
    /// (e.g. parked in `Recv`) before migrating it.
    pub fn drive_rank(&mut self, rank: RankId) -> Result<(), RtsError> {
        let _scope = self.trace_scope();
        self.run_rank_slice(rank).map(|_| ())
    }

    /// Deliver a raw runtime message (harness use: waking a parked rank).
    pub fn inject_message(&mut self, msg: RtsMessage) {
        self.deposit(msg);
    }

    /// Explicitly migrate a suspended rank (the Fig. 8 harness; LB uses
    /// the same path).
    pub fn migrate_now(&mut self, rank: RankId, to_pe: PeId) -> Result<MigrationRecord, RtsError> {
        if to_pe >= self.pes.len() {
            return Err(RtsError::BadMigration {
                rank,
                detail: format!("destination PE {to_pe} out of range"),
            });
        }
        if !self.alive[to_pe] {
            return Err(RtsError::BadMigration {
                rank,
                detail: format!("destination PE {to_pe} has failed"),
            });
        }
        if !self.privatizers[0].supports_migration() {
            return Err(RtsError::BadMigration {
                rank,
                detail: format!(
                    "{} does not support migration (segments not allocated via Isomalloc)",
                    self.method()
                ),
            });
        }
        let from_pe = self.ranks[rank].location;
        if self.ranks[rank].status == RankStatus::Done {
            return Err(RtsError::BadMigration {
                rank,
                detail: "rank already completed".into(),
            });
        }
        // Region-copy events from pack/unpack land against this rank.
        let trace_scope = self.trace_scope();
        if trace_scope.is_some() {
            pvr_trace::set_context(from_pe, rank as u32, self.trace_now_ns(from_pe));
        }

        // Pack (real memcpy) → "transfer" → unpack (real memcpy). The
        // region ownership never leaves this address space, preserving
        // the Isomalloc same-VA invariant; the byte movement is real.
        // With code-dedup on, the bitwise-identical code segment copies
        // are skipped (re-duplicated from the destination's local image
        // in the real system).
        let dedup = self.code_dedup_migration;
        let include = move |k: pvr_isomalloc::RegionKind| {
            !(dedup && k == pvr_isomalloc::RegionKind::CodeSegment)
        };
        let t0 = Instant::now();
        let buf = self.ranks[rank].memory.pack_with(include);
        let bytes = buf.len();
        self.ranks[rank]
            .memory
            .unpack_into_with(&buf, include)
            .expect("self-roundtrip cannot fail");
        let real_time = t0.elapsed();
        let sim_cost = self
            .network
            .cost(&self.topology, from_pe, to_pe, bytes);

        // Commit location.
        self.location.update(rank, to_pe);
        self.ranks[rank].location = to_pe;
        self.ranks[rank]
            .shared
            .current_pe
            .store(to_pe, Ordering::Relaxed);
        self.ranks[rank].migrations += 1;
        if self.ranks[rank].status == RankStatus::Ready {
            self.pes[from_pe].ready.retain(|&x| x != rank);
            self.pes[to_pe].ready.push_back(rank);
            if self.clock == ClockMode::Virtual {
                let at = self.queue.now().max_of(self.pes[to_pe].clock);
                self.queue.schedule(at, Event::PeWake { pe: to_pe });
            }
        }

        let rec = MigrationRecord {
            rank,
            from_pe,
            to_pe,
            bytes,
            real_time,
            sim_cost,
        };
        self.trace(
            from_pe,
            rank as u32,
            EventKind::Migration {
                from_pe: from_pe as u32,
                to_pe: to_pe as u32,
                bytes: bytes as u64,
            },
        );
        drop(trace_scope);
        self.migrations.push(rec);
        Ok(rec)
    }

    fn respond(&mut self, rank: RankId, resp: Response) {
        self.ranks[rank].slot.lock().resp = Some(resp);
    }

    /// Route a message (immediately in real time; as an event in virtual
    /// time, through the reliable-delivery layer when the network is
    /// lossy).
    fn route(&mut self, from_pe: PeId, msg: RtsMessage) {
        match self.clock {
            ClockMode::RealTime => self.deposit(msg),
            ClockMode::Virtual if self.reliable.is_some() => self.send_reliable(from_pe, msg),
            ClockMode::Virtual => {
                let dest_pe = self.location.lookup(msg.to);
                let cost = self
                    .network
                    .cost(&self.topology, from_pe, dest_pe, msg.wire_bytes());
                let at = self.pes[from_pe].clock + cost;
                self.queue.schedule(
                    at.max_of(self.queue.now()),
                    Event::Deliver {
                        msg,
                        dest_pe,
                        forwarded: false,
                    },
                );
            }
        }
    }

    /// Assign a per-(src,dst) sequence number, stamp the checksum,
    /// record the message in-flight, and transmit attempt 0.
    fn send_reliable(&mut self, from_pe: PeId, mut msg: RtsMessage) {
        let rel = self.reliable.as_mut().expect("reliable layer active");
        let counter = rel.send_seq.entry((msg.from, msg.to)).or_insert(0);
        *counter += 1;
        msg.seq = *counter;
        msg.seal();
        rel.inflight
            .insert((msg.from, msg.to, msg.seq), msg.clone());
        let t_send = self.pes[from_pe].clock.max_of(self.queue.now());
        self.transmit(t_send, msg, 0);
    }

    /// Transmit one attempt of an in-flight message: apply the fault
    /// plan per copy (drop/duplicate/corrupt/jitter), schedule surviving
    /// copies for delivery, and arm the retransmit timer.
    fn transmit(&mut self, t_send: SimTime, msg: RtsMessage, attempt: u32) {
        let (from, to, seq) = (msg.from, msg.to, msg.seq);
        let from_pe = self.ranks[from].location;
        let dest_pe = self.location.lookup(to);
        let class = NetworkModel::classify(&self.topology, from_pe, dest_pe);
        let cost = self
            .network
            .cost(&self.topology, from_pe, dest_pe, msg.wire_bytes());
        let rel = self.reliable.as_ref().expect("reliable layer active");
        let plan = rel.plan;
        let base_rto = rel.base_rto;

        let primary =
            plan.decide(class, FaultPlan::message_key(from as u64, to as u64, seq, attempt, 0, FaultStream::Data));
        let mut copies = vec![primary];
        if primary.duplicate {
            self.tallies.duplicates_injected += 1;
            // The duplicate's own fate is decided independently; its
            // `duplicate` flag is ignored to prevent cascades.
            copies.push(plan.decide(
                class,
                FaultPlan::message_key(from as u64, to as u64, seq, attempt, 1, FaultStream::Data),
            ));
        }
        for d in copies {
            if d.drop {
                self.tallies.msgs_dropped += 1;
                self.trace(
                    from_pe,
                    from as u32,
                    EventKind::MsgDrop {
                        from: from as u32,
                        to: to as u32,
                        seq,
                        ack: false,
                    },
                );
                continue;
            }
            let mut copy = msg.clone();
            if d.corrupt {
                Self::corrupt_in_flight(&mut copy);
            }
            let at = (t_send + cost + d.jitter).max_of(self.queue.now());
            self.queue.schedule(
                at,
                Event::Deliver {
                    msg: copy,
                    dest_pe,
                    forwarded: false,
                },
            );
        }

        // Retransmit timer: a generous multiple of the modeled round
        // trip plus the configured base, doubling per attempt.
        let rtt_estimate = SimDuration::from_nanos(cost.nanos().saturating_mul(4));
        let rto = SimDuration::from_nanos(
            (base_rto.nanos() + rtt_estimate.nanos()) << attempt.min(20),
        );
        self.queue.schedule(
            (t_send + rto).max_of(self.queue.now()),
            Event::Retransmit {
                from,
                to,
                seq,
                attempt,
            },
        );
    }

    /// Flip one payload bit (or a checksum bit for empty payloads) —
    /// the receiver's integrity check is what detects this.
    fn corrupt_in_flight(msg: &mut RtsMessage) {
        if msg.payload.is_empty() {
            msg.checksum ^= 1;
        } else {
            let mut bytes = msg.payload.as_ref().to_vec();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            msg.payload = bytes::Bytes::from(bytes);
        }
    }

    /// Receive one arriving copy under reliable delivery: verify
    /// integrity, acknowledge, dedup/reorder, and deposit newly in-order
    /// messages to the application.
    fn receive_transport(&mut self, msg: RtsMessage, t: SimTime) {
        let (from, to, seq) = (msg.from, msg.to, msg.seq);
        let recv_pe = self.ranks[to].location;
        if !msg.intact() {
            self.tallies.msgs_corrupted += 1;
            self.trace(
                recv_pe,
                to as u32,
                EventKind::MsgCorrupt {
                    from: from as u32,
                    to: to as u32,
                    seq,
                },
            );
            // no ack: the sender's retransmit timer recovers the message
            return;
        }
        // Ack every intact arrival (duplicates re-ack so a sender whose
        // earlier ack was dropped stops retransmitting).
        self.send_ack(from, to, seq, t);

        let (is_dup, ready) = {
            let rel = self.reliable.as_mut().expect("reliable layer active");
            let pair = rel.recv.entry((from, to)).or_default();
            if seq < pair.next_expected || pair.pending.contains_key(&seq) {
                (true, Vec::new())
            } else {
                pair.pending.insert(seq, msg);
                let mut ready = Vec::new();
                while let Some(m) = pair.pending.remove(&pair.next_expected) {
                    pair.next_expected += 1;
                    ready.push(m);
                }
                (false, ready)
            }
        };
        if is_dup {
            self.tallies.duplicates_suppressed += 1;
            self.trace(
                recv_pe,
                to as u32,
                EventKind::MsgDupSuppressed {
                    from: from as u32,
                    to: to as u32,
                    seq,
                },
            );
            return;
        }
        for m in ready {
            self.deposit(m);
        }
    }

    /// Send an acknowledgement back to the sender's PE, itself subject
    /// to the fault plan's drop and jitter on the reverse path.
    fn send_ack(&mut self, from: RankId, to: RankId, seq: u64, t: SimTime) {
        let recv_pe = self.ranks[to].location;
        let send_pe = self.ranks[from].location;
        let class = NetworkModel::classify(&self.topology, recv_pe, send_pe);
        let cost = self.network.cost(&self.topology, recv_pe, send_pe, 32);
        let rel = self.reliable.as_mut().expect("reliable layer active");
        rel.ack_counter += 1;
        let instance = rel.ack_counter;
        let plan = rel.plan;
        let d = plan.decide(
            class,
            FaultPlan::message_key(
                from as u64,
                to as u64,
                seq,
                instance as u32,
                0,
                FaultStream::Ack,
            ),
        );
        if d.drop {
            self.tallies.acks_dropped += 1;
            self.trace(
                recv_pe,
                NO_RANK,
                EventKind::MsgDrop {
                    from: from as u32,
                    to: to as u32,
                    seq,
                    ack: true,
                },
            );
            return;
        }
        let at = (t + cost + d.jitter).max_of(self.queue.now());
        self.queue.schedule(at, Event::Ack { from, to, seq });
    }

    /// Put a message in its target's mailbox, waking the target. A rank
    /// parked in `Recv` gets its pending command answered right here, so
    /// it can be resumed directly.
    fn deposit(&mut self, msg: RtsMessage) {
        let to = msg.to;
        self.messages_delivered += 1;
        self.ranks[to].messages_received += 1;
        if self.tracer.is_some() {
            let pe = self.ranks[to].location;
            self.trace(
                pe,
                to as u32,
                EventKind::MsgRecv {
                    from: msg.from as u32,
                    tag: msg.tag,
                    bytes: msg.wire_bytes() as u32,
                },
            );
        }
        self.ranks[to].mailbox.push_back(msg);
        if self.ranks[to].status == RankStatus::Waiting {
            let m = self.ranks[to]
                .mailbox
                .pop_front()
                .expect("just deposited");
            self.respond(to, Response::Message(m));
            self.ranks[to].status = RankStatus::Ready;
            let pe = self.ranks[to].location;
            self.trace(pe, to as u32, EventKind::Unblock);
            self.pes[pe].ready.push_back(to);
            if self.clock == ClockMode::Virtual {
                let at = self.queue.now().max_of(self.pes[pe].clock);
                self.queue.schedule(at, Event::PeWake { pe });
            }
        }
    }

    /// Drive one rank until it blocks, parks, yields, or completes.
    fn run_rank_slice(&mut self, r: RankId) -> Result<StopReason, RtsError> {
        loop {
            let pe = self.ranks[r].location;
            // Context switch: install the rank's privatization registers
            // and this PE's hierarchical-local-storage block.
            self.ranks[r].instance.activate();
            let hls = self.pe_hls_blocks[pe];
            if !hls.is_null() {
                pvr_privatize::regs::set_pe_base(hls);
            }
            let now_ns = match self.clock {
                ClockMode::Virtual => self.pes[pe].clock.nanos(),
                ClockMode::RealTime => self.epoch.elapsed().as_nanos() as u64,
            };
            self.ranks[r].shared.now_ns.store(now_ns, Ordering::Relaxed);
            self.pes[pe].switches += 1;
            self.total_switches += 1;
            if self.tracer.is_some() {
                pvr_trace::set_context(pe, r as u32, now_ns);
                self.trace(
                    pe,
                    r as u32,
                    EventKind::CtxSwitchIn {
                        ctx_work: self.ranks[r].instance.has_ctx_work(),
                    },
                );
            }

            let mut ult = self.ranks[r].ult.take().expect("rank ULT present");
            let t0 = Instant::now();
            self.last_ran = Some(r);
            let outcome = ult.try_resume();
            let wall = t0.elapsed();
            self.ranks[r].ult = Some(ult);

            if self.clock == ClockMode::RealTime {
                let d: SimDuration = wall.into();
                self.ranks[r].load_since_lb += d;
                self.ranks[r].total_load += d;
            }

            if self.guards {
                self.check_stack_guard_of(r, pe)?;
                self.check_segment_bleed(r, pe)?;
            }

            match outcome {
                Ok(pvr_ult::UltState::Complete) => {
                    self.ranks[r].status = RankStatus::Done;
                    self.done_count += 1;
                    return Ok(StopReason::Done);
                }
                Err(e) => {
                    self.ranks[r].status = RankStatus::Done;
                    self.done_count += 1;
                    let message = match e {
                        pvr_ult::ResumeError::Panicked(p) => p
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| p.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic>".into()),
                        pvr_ult::ResumeError::Completed => "resume after completion".into(),
                    };
                    return Err(RtsError::RankPanicked { rank: r, message });
                }
                Ok(pvr_ult::UltState::Suspended) => {}
            }

            let cmd = self.ranks[r].slot.lock().cmd.take();
            let Some(cmd) = cmd else {
                return Err(RtsError::Protocol {
                    rank: r,
                    detail: "rank yielded without issuing a command".into(),
                });
            };

            match cmd {
                Command::Send { to, tag, payload } => {
                    if to >= self.ranks.len() {
                        return Err(RtsError::Protocol {
                            rank: r,
                            detail: format!("send to nonexistent rank {to}"),
                        });
                    }
                    self.ranks[r].messages_sent += 1;
                    let msg = RtsMessage::new(r, to, tag, payload);
                    *self.comm_bytes.entry((r, to)).or_default() += msg.wire_bytes() as u64;
                    self.trace(
                        pe,
                        r as u32,
                        EventKind::MsgSend {
                            to: to as u32,
                            tag,
                            bytes: msg.wire_bytes() as u32,
                        },
                    );
                    self.respond(r, Response::Ack);
                    self.route(pe, msg);
                }
                Command::Recv => {
                    if let Some(m) = self.ranks[r].mailbox.pop_front() {
                        self.respond(r, Response::Message(m));
                    } else {
                        self.ranks[r].status = RankStatus::Waiting;
                        self.trace(pe, r as u32, EventKind::Block);
                        // response delivered when a message arrives and
                        // the rank is rescheduled
                        return Ok(StopReason::BlockedRecv);
                    }
                }
                Command::TryRecv => {
                    let resp = match self.ranks[r].mailbox.pop_front() {
                        Some(m) => Response::Message(m),
                        None => Response::NoMessage,
                    };
                    self.respond(r, resp);
                }
                Command::Compute(d) => {
                    if self.clock == ClockMode::Virtual {
                        self.pes[pe].work(d);
                        self.ranks[r].load_since_lb += d;
                        self.ranks[r].total_load += d;
                        self.ranks[r]
                            .shared
                            .now_ns
                            .store(self.pes[pe].clock.nanos(), Ordering::Relaxed);
                    }
                    self.respond(r, Response::Ack);
                }
                Command::Yield => {
                    self.respond(r, Response::Ack);
                    self.pes[pe].ready.push_back(r);
                    return Ok(StopReason::Yielded);
                }
                Command::AtSync => {
                    self.respond(r, Response::Ack);
                    self.ranks[r].status = RankStatus::AtSync;
                    self.at_sync_count += 1;
                    return Ok(StopReason::AtSync);
                }
                Command::AllocHeap { size, align } => {
                    let ptr = self.ranks[r]
                        .memory
                        .heap()
                        .alloc(size, align)
                        .map_err(|e| RtsError::Privatize(PrivatizeError::Alloc(e)))?;
                    self.respond(r, Response::Addr(ptr.ptr as usize));
                }
                Command::FreeHeap { addr, size } => {
                    let res = self.ranks[r].memory.heap().try_dealloc(IsoPtr {
                        ptr: addr as *mut u8,
                        size,
                    });
                    match res {
                        Ok(()) => self.respond(r, Response::Ack),
                        Err(v) => {
                            self.trace(
                                pe,
                                r as u32,
                                EventKind::ArenaGuardTrip {
                                    kind: arena_trip_kind(&v),
                                },
                            );
                            self.hardening.arena_guard_trips += 1;
                            // No response: the rank's corrupted-heap state
                            // must not run further; its suspended ULT is
                            // cancelled at teardown (same as AllocHeap
                            // failure).
                            return Err(RtsError::ArenaGuard {
                                rank: r,
                                detail: v.to_string(),
                            });
                        }
                    }
                }
            }
        }
    }

    /// Verify `r`'s stack red zone after a resume. A clobbered canary
    /// ends the run with a clean, rank-attributed error; the corrupt
    /// stack is abandoned, never resumed or unwound.
    fn check_stack_guard_of(&mut self, r: RankId, pe: PeId) -> Result<(), RtsError> {
        let trip = match self.ranks[r].ult.as_ref() {
            Some(u) if u.stack_guarded() => u.check_stack_guard().err(),
            _ => None,
        };
        let Some(e) = trip else {
            return Ok(());
        };
        let pvr_ult::UltError::StackOverflow { stack_size } = &e;
        self.trace(
            pe,
            r as u32,
            EventKind::StackGuardTrip {
                stack_size: *stack_size as u64,
            },
        );
        self.hardening.stack_guard_trips += 1;
        if let Some(u) = self.ranks[r].ult.as_mut() {
            u.abandon();
        }
        self.ranks[r].status = RankStatus::Done;
        self.done_count += 1;
        Err(RtsError::StackGuard {
            rank: r,
            detail: e.to_string(),
        })
    }

    /// After rank `writer` ran, recompute every rank's privatized-data-
    /// segment checksum. The writer's own segment may legitimately change
    /// (those are its globals); any *other* rank's segment changing while
    /// `writer` held the PE is cross-rank global bleed, attributed to
    /// `writer`.
    fn check_segment_bleed(&mut self, writer: RankId, pe: PeId) -> Result<(), RtsError> {
        if self.segment_baseline.is_empty() {
            return Ok(());
        }
        let mut victim: Option<RankId> = None;
        let mut dirty = 0u32;
        for q in 0..self.ranks.len() {
            let Some(sum) = segment_checksum_in(&self.privatizers, q) else {
                continue;
            };
            if q == writer {
                self.segment_baseline[q] = Some(sum);
            } else if self.segment_baseline[q] != Some(sum) {
                self.segment_baseline[q] = Some(sum);
                dirty += 1;
                victim.get_or_insert(q);
            }
        }
        if let Some(q) = victim {
            self.trace(
                pe,
                writer as u32,
                EventKind::SegmentAudit {
                    ranks: self.ranks.len() as u32,
                    dirty,
                },
            );
            self.hardening.segment_audits += 1;
            return Err(RtsError::SegmentBleed { rank: q, writer });
        }
        Ok(())
    }

    fn live_count(&self) -> usize {
        self.ranks.len() - self.done_count
    }

    fn lb_due(&self) -> bool {
        self.at_sync_count > 0 && self.at_sync_count == self.live_count()
    }

    /// The buddy PE that holds a second copy of `pe`'s checkpoint
    /// images: the next alive PE cyclically (or `pe` itself when it is
    /// the only survivor).
    fn buddy_of(&self, pe: PeId) -> PeId {
        let n = self.pes.len();
        (1..n)
            .map(|off| (pe + off) % n)
            .find(|&p| self.alive[p])
            .unwrap_or(pe)
    }

    /// Take a coordinated checkpoint: pack every live rank's memory
    /// (valid at an LB barrier, where all live ranks are parked at
    /// `AtSync` with drained mailboxes). Each image is replicated to the
    /// home PE's buddy so one PE failure cannot lose it.
    fn take_checkpoint(&mut self) {
        let entries: Vec<CheckpointEntry> = (0..self.ranks.len())
            .map(|r| {
                let rank = &self.ranks[r];
                let sp = rank.ult.as_ref().and_then(|u| u.suspended_sp());
                let image = rank.memory.pack();
                let checksum = image.checksum();
                let primary_pe = rank.location;
                CheckpointEntry {
                    buddy_image: image.clone(),
                    image,
                    sp,
                    checksum,
                    primary_pe,
                    buddy_pe: self.buddy_of(primary_pe),
                }
            })
            .collect();
        let bytes: u64 = entries.iter().map(|e| e.image.len() as u64).sum();
        self.last_checkpoint = Some(Checkpoint { entries });
        self.tallies.checkpoints += 1;
        self.trace(
            0,
            NO_RANK,
            EventKind::CheckpointTaken {
                step: self.lb_steps,
                bytes,
            },
        );
    }

    /// Restore every rank's memory from the last checkpoint. Ranks
    /// resume from the sync point at which the checkpoint was taken and
    /// recompute forward — classic coordinated rollback.
    ///
    /// Failure-atomic: every image is selected (from a live holder),
    /// checksummed, and layout-verified before any rank is mutated, so a
    /// restore that cannot succeed leaves all rank memory untouched and
    /// the checkpoint still in place.
    fn restore_checkpoint(&mut self) -> Result<(), RtsError> {
        let Some(ckpt) = self.last_checkpoint.take() else {
            return Err(RtsError::Protocol {
                rank: usize::MAX,
                detail: "fault injected with no checkpoint available".into(),
            });
        };

        // Phase 1: verify everything, mutating nothing.
        let verify = || -> Result<Vec<bool>, RtsError> {
            let mut use_buddy = Vec::with_capacity(ckpt.entries.len());
            for (rank, e) in ckpt.entries.iter().enumerate() {
                let from_buddy = if self.alive[e.primary_pe] {
                    false
                } else if self.alive[e.buddy_pe] {
                    true
                } else {
                    return Err(RtsError::Protocol {
                        rank,
                        detail: format!(
                            "checkpoint lost: both holders (PE {} and buddy PE {}) are dead",
                            e.primary_pe, e.buddy_pe
                        ),
                    });
                };
                let img = if from_buddy { &e.buddy_image } else { &e.image };
                if img.checksum() != e.checksum {
                    return Err(RtsError::Protocol {
                        rank,
                        detail: "checkpoint image checksum mismatch".into(),
                    });
                }
                self.ranks[rank]
                    .memory
                    .verify_layout(img)
                    .map_err(|e| RtsError::Protocol {
                        rank,
                        detail: format!("checkpoint restore failed: {e}"),
                    })?;
                use_buddy.push(from_buddy);
            }
            Ok(use_buddy)
        };
        let use_buddy = match verify() {
            Ok(v) => v,
            Err(e) => {
                // nothing was touched; keep the checkpoint for later
                self.last_checkpoint = Some(ckpt);
                return Err(e);
            }
        };

        // Phase 2: restore is two-phase per rank — stack/heap/segment
        // bytes, then the suspension point (stack pointer) those bytes
        // belong to.
        for (rank, (e, &from_buddy)) in ckpt.entries.iter().zip(&use_buddy).enumerate() {
            let img = if from_buddy { &e.buddy_image } else { &e.image };
            self.ranks[rank]
                .memory
                .unpack_into(img)
                .expect("layout verified before unpack");
            if let Some(sp) = e.sp {
                // SAFETY: the stack bytes were just restored to exactly
                // the state observed together with this sp.
                unsafe {
                    self.ranks[rank]
                        .ult
                        .as_mut()
                        .expect("rank ULT present")
                        .restore_suspended_sp(sp);
                }
            }
        }
        let ranks = ckpt.entries.len() as u32;
        self.last_checkpoint = Some(ckpt);
        self.tallies.recoveries += 1;
        self.trace(0, NO_RANK, EventKind::Recovery { ranks });
        Ok(())
    }

    /// Checkpoint/restart totals: (checkpoints taken, recoveries done).
    pub fn fault_tolerance_stats(&self) -> (u32, u32) {
        (self.tallies.checkpoints, self.tallies.recoveries)
    }

    /// Kill PE `pe`: its resident ranks lose their memory, the machine
    /// rolls every rank back to the last coordinated checkpoint, and the
    /// dead PE's ranks are adopted by the surviving PEs (buddy images
    /// make the rollback possible even though the primary copy died with
    /// the PE).
    fn fail_pe(&mut self, pe: PeId) -> Result<(), RtsError> {
        if !self.alive[pe] {
            return Ok(());
        }
        if self.alive.iter().filter(|a| **a).count() < 2 {
            return Err(RtsError::Protocol {
                rank: usize::MAX,
                detail: format!("cannot fail PE {pe}: it is the last alive PE"),
            });
        }
        if self.done_count > 0 {
            return Err(RtsError::Protocol {
                rank: usize::MAX,
                detail: "PE failure after rank completion is unsupported \
                         (completed ranks cannot roll back)"
                    .into(),
            });
        }
        if self.last_checkpoint.is_none() {
            return Err(RtsError::Protocol {
                rank: usize::MAX,
                detail: "fault injected with no checkpoint available".into(),
            });
        }
        let lost: Vec<RankId> = self.location.residents(pe).collect();
        self.tallies.pe_failures += 1;
        self.trace(
            pe,
            NO_RANK,
            EventKind::PeFail {
                pe: pe as u32,
                ranks_lost: lost.len() as u32,
            },
        );
        self.alive[pe] = false;
        self.pes[pe].ready.clear();
        // The dead PE's rank images are gone: scribble them so any read
        // of un-restored state is loud.
        for &r in &lost {
            let regions: Vec<(*mut u8, usize)> = self.ranks[r]
                .memory
                .regions()
                .map(|reg| (reg.base_mut(), reg.len()))
                .collect();
            for (ptr, len) in regions {
                unsafe { std::ptr::write_bytes(ptr, 0xDE, len) };
            }
        }
        // Coordinated rollback of every rank (survivors included).
        if let Err(e) = self.restore_checkpoint() {
            // The scribbled stacks can never be unwound safely; abandon
            // those ULTs so Machine teardown doesn't resume onto them.
            self.abandon_ranks(&lost);
            return Err(e);
        }
        self.reseed_guards_after_restore();
        // Survivors adopt the dead PE's ranks (least-loaded first).
        for r in lost {
            let target = self.least_loaded_alive_pe();
            let rec = self.migrate_now(r, target)?;
            if self.clock == ClockMode::Virtual {
                self.pes[target].work(rec.sim_cost);
            }
        }
        Ok(())
    }

    /// The alive PE with the smallest resident load (sum of its ranks'
    /// load since the last LB step), ties broken by PE id.
    fn least_loaded_alive_pe(&self) -> PeId {
        (0..self.pes.len())
            .filter(|&p| self.alive[p])
            .min_by(|&a, &b| {
                let load = |pe: PeId| -> SimDuration {
                    self.location
                        .residents(pe)
                        .map(|r| self.ranks[r].load_since_lb)
                        .fold(SimDuration::ZERO, |acc, d| acc + d)
                };
                load(a).cmp(&load(b)).then(a.cmp(&b))
            })
            .expect("at least one alive PE")
    }

    /// First alive PE at or cyclically after `p` (placement repair after
    /// a PE death).
    fn first_alive_from(&self, p: PeId) -> PeId {
        let n = self.pes.len();
        (0..n)
            .map(|off| (p + off) % n)
            .find(|&q| self.alive[q])
            .expect("at least one alive PE")
    }

    /// Write off ranks whose memory was scribbled by an injected fault and
    /// could not be restored: their suspended stacks must never be resumed
    /// (not even for cancellation-unwind at drop), so the ULTs leak.
    fn abandon_ranks(&mut self, ranks: &[RankId]) {
        for &r in ranks {
            if let Some(ult) = self.ranks[r].ult.as_mut() {
                ult.abandon();
            }
        }
    }

    /// Barrier-time guard audits, run while every live rank is quiescent:
    /// sweep each rank's arena quarantine for writes through stale
    /// pointers, then checksum every privatized data segment and emit the
    /// summary `SegmentAudit` event.
    fn audit_guards_at_barrier(&mut self) -> Result<(), RtsError> {
        for r in 0..self.ranks.len() {
            if let Err(v) = self.ranks[r].memory.heap_ref().audit_quarantine() {
                let pe = self.ranks[r].location;
                self.trace(
                    pe,
                    r as u32,
                    EventKind::ArenaGuardTrip {
                        kind: arena_trip_kind(&v),
                    },
                );
                self.hardening.arena_guard_trips += 1;
                return Err(RtsError::ArenaGuard {
                    rank: r,
                    detail: v.to_string(),
                });
            }
        }
        if !self.segment_baseline.is_empty() {
            let mut audited = 0u32;
            let mut dirty = 0u32;
            let mut victim: Option<RankId> = None;
            for q in 0..self.ranks.len() {
                let Some(sum) = segment_checksum_in(&self.privatizers, q) else {
                    continue;
                };
                audited += 1;
                if self.segment_baseline[q] != Some(sum) {
                    self.segment_baseline[q] = Some(sum);
                    dirty += 1;
                    victim.get_or_insert(q);
                }
            }
            self.trace(
                0,
                NO_RANK,
                EventKind::SegmentAudit {
                    ranks: audited,
                    dirty,
                },
            );
            self.hardening.segment_audits += 1;
            if let Some(q) = victim {
                // The per-slice check clears after every resume, so bleed
                // surfacing only at the barrier was written outside any
                // rank's slice; the best attribution is the last resumed
                // rank.
                return Err(RtsError::SegmentBleed {
                    rank: q,
                    writer: self.last_ran.unwrap_or(RankId::MAX),
                });
            }
        }
        Ok(())
    }

    /// Recovery rewrites rank memory wholesale: reseed the segment
    /// baselines and reset each arena's quarantine so stale poison
    /// expectations don't fire as false guard trips on restored bytes.
    fn reseed_guards_after_restore(&mut self) {
        if !self.guards {
            return;
        }
        for r in 0..self.ranks.len() {
            let heap = self.ranks[r].memory.heap();
            if heap.guard_enabled() {
                heap.set_guard(false);
                heap.set_guard(true);
            }
        }
        if !self.segment_baseline.is_empty() {
            self.segment_baseline = (0..self.ranks.len())
                .map(|q| segment_checksum_in(&self.privatizers, q))
                .collect();
        }
    }

    /// Run one LB step: measure, rebalance, migrate, release.
    fn do_lb_step(&mut self) -> Result<(), RtsError> {
        self.lb_steps += 1;
        let migrations_before = self.migrations.len();

        // Guard audits run first, on quiescent pre-checkpoint state, so a
        // checkpoint can never capture (and later faithfully restore)
        // corruption the guards would have caught.
        if self.guards {
            self.audit_guards_at_barrier()?;
        }

        // Coordinated checkpointing and fault injection happen at the
        // barrier, where every live rank is quiescent.
        if self.checkpoint_period > 0
            && self.done_count == 0
            && self.lb_steps % self.checkpoint_period == 1 % self.checkpoint_period.max(1)
        {
            self.take_checkpoint();
        }
        if self.inject_fault_at_lb_step == Some(self.lb_steps) {
            // refuse before destroying anything if recovery is impossible
            if self.last_checkpoint.is_none() {
                return Err(RtsError::Protocol {
                    rank: usize::MAX,
                    detail: "fault injected with no checkpoint available".into(),
                });
            }
            // soft fault: scribble over every rank's memory...
            for r in 0..self.ranks.len() {
                let regions: Vec<(*mut u8, usize)> = self.ranks[r]
                    .memory
                    .regions()
                    .map(|reg| (reg.base_mut(), reg.len()))
                    .collect();
                for (ptr, len) in regions {
                    unsafe { std::ptr::write_bytes(ptr, 0xDE, len) };
                }
            }
            // ...and recover from the checkpoint before anything runs.
            if let Err(e) = self.restore_checkpoint() {
                // Every stack is scribbled; abandon all ULTs so teardown
                // doesn't unwind onto garbage frames.
                let all: Vec<RankId> = (0..self.ranks.len()).collect();
                self.abandon_ranks(&all);
                return Err(e);
            }
            self.reseed_guards_after_restore();
            self.inject_fault_at_lb_step = None;
        }
        if let Some((step, pe)) = self.inject_pe_failure {
            if step == self.lb_steps {
                self.fail_pe(pe)?;
                self.inject_pe_failure = None;
            }
        }

        // Virtual mode: the sync point is a barrier — all alive PEs meet
        // at the max alive clock.
        if self.clock == ClockMode::Virtual {
            let max_clock = self
                .pes
                .iter()
                .zip(&self.alive)
                .filter(|(_, alive)| **alive)
                .map(|(p, _)| p.clock)
                .max()
                .unwrap_or(SimTime::ZERO);
            for (pe, alive) in self.pes.iter_mut().zip(&self.alive) {
                if *alive {
                    pe.advance_to(max_clock);
                }
            }
        }

        if let Some(balancer) = self.balancer.take() {
            let stats = LbStats {
                loads: self
                    .ranks
                    .iter()
                    .map(|r| r.load_since_lb.as_secs_f64())
                    .collect(),
                placement: self.location.placements(),
                n_pes: self.pes.len(),
                migration_bytes: self.ranks.iter().map(|r| r.migration_bytes()).collect(),
                comm_bytes: self
                    .comm_bytes
                    .iter()
                    .map(|(&(a, b), &v)| (a, b, v))
                    .collect(),
            };
            let mut new_placement = balancer.rebalance(&stats);
            self.balancer = Some(balancer);
            assert_eq!(new_placement.len(), self.ranks.len());
            // A balancer unaware of PE deaths may target a dead PE;
            // repair by shifting such ranks to the next alive PE.
            for p in new_placement.iter_mut() {
                if !self.alive[*p] {
                    *p = self.first_alive_from(*p);
                }
            }

            // LB database entry
            self.lb_history.push(LbRecord {
                step: self.lb_steps,
                at: self.pes.iter().map(|p| p.clock).max().unwrap_or(SimTime::ZERO),
                pe_loads_before: stats.pe_loads(&stats.placement),
                pe_loads_after: stats.pe_loads(&new_placement),
                migrations: stats.migration_count(&new_placement),
                comm_bytes: stats.comm_bytes.iter().map(|&(_, _, b)| b).sum(),
            });

            for (r, &new_pe) in new_placement.iter().enumerate() {
                if self.ranks[r].status == RankStatus::Done {
                    continue;
                }
                if new_pe != self.ranks[r].location {
                    let rec = self.migrate_now(r, new_pe)?;
                    if self.clock == ClockMode::Virtual {
                        // both endpoints pay the transfer
                        let from = rec.from_pe;
                        let to = rec.to_pe;
                        self.pes[from].work(rec.sim_cost);
                        self.pes[to].work(rec.sim_cost);
                    }
                }
            }
        }

        // reset loads, the comm graph, and release everyone
        self.comm_bytes.clear();
        for r in 0..self.ranks.len() {
            self.ranks[r].load_since_lb = SimDuration::ZERO;
            if self.ranks[r].status == RankStatus::AtSync {
                self.ranks[r].status = RankStatus::Ready;
                let pe = self.ranks[r].location;
                self.pes[pe].ready.push_back(r);
                if self.clock == ClockMode::Virtual {
                    let at = self.queue.now().max_of(self.pes[pe].clock);
                    self.queue.schedule(at, Event::PeWake { pe });
                }
            }
        }
        self.at_sync_count = 0;
        self.trace(
            0,
            NO_RANK,
            EventKind::LbStep {
                step: self.lb_steps,
                migrations: (self.migrations.len() - migrations_before) as u32,
            },
        );
        Ok(())
    }

    /// Run the job to completion.
    pub fn run(&mut self) -> Result<RunReport, RtsError> {
        let _scope = self.trace_scope();
        let t0 = Instant::now();
        match self.clock {
            ClockMode::RealTime => self.run_real()?,
            ClockMode::Virtual => self.run_virtual()?,
        }
        let real_elapsed = t0.elapsed();
        if let Some(t) = &self.tracer {
            for (pe, p) in self.pes.iter().enumerate() {
                t.set_pe_clock(pe, p.busy.nanos(), p.idle.nanos());
            }
        }
        Ok(RunReport {
            sim_elapsed: self
                .pes
                .iter()
                .map(|p| p.clock)
                .max()
                .unwrap_or(SimTime::ZERO)
                - SimTime::ZERO,
            real_elapsed,
            pe_busy_idle: self.pes.iter().map(|p| (p.busy, p.idle)).collect(),
            context_switches: self.total_switches,
            messages_delivered: self.messages_delivered,
            lb_steps: self.lb_steps,
            migrations: self.migrations.clone(),
            pe_clocks: self.pes.iter().map(|p| p.clock).collect(),
            lb_history: self.lb_history.clone(),
            faults: self.tallies,
            method_requested: self.method_requested,
            method_landed: self.method(),
            hardening: self.hardening,
        })
    }

    fn run_real(&mut self) -> Result<(), RtsError> {
        while self.done_count < self.ranks.len() {
            let mut progressed = false;
            for pe in 0..self.pes.len() {
                while let Some(r) = self.pes[pe].ready.pop_front() {
                    if self.ranks[r].status == RankStatus::Done {
                        continue;
                    }
                    progressed = true;
                    self.run_rank_slice(r)?;
                    if self.lb_due() {
                        self.do_lb_step()?;
                    }
                }
            }
            if !progressed {
                if self.lb_due() {
                    self.do_lb_step()?;
                    continue;
                }
                let waiting: Vec<RankId> = self
                    .ranks
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| !r.is_done())
                    .map(|(i, _)| i)
                    .collect();
                if waiting.is_empty() {
                    break;
                }
                return Err(RtsError::Deadlock { waiting });
            }
        }
        Ok(())
    }

    fn run_virtual(&mut self) -> Result<(), RtsError> {
        // all PEs start at t=0
        for pe in 0..self.pes.len() {
            self.queue.schedule(SimTime::ZERO, Event::PeWake { pe });
        }
        while self.done_count < self.ranks.len() {
            let Some((t, ev)) = self.queue.pop() else {
                if self.lb_due() {
                    self.do_lb_step()?;
                    continue;
                }
                let waiting: Vec<RankId> = self
                    .ranks
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| !r.is_done())
                    .map(|(i, _)| i)
                    .collect();
                if waiting.is_empty() {
                    break;
                }
                return Err(RtsError::Deadlock { waiting });
            };
            match ev {
                Event::Deliver {
                    msg,
                    dest_pe,
                    forwarded,
                } => {
                    let actual_pe = self.location.lookup(msg.to);
                    if actual_pe != dest_pe && !forwarded {
                        // stale location: forward one extra hop
                        self.location.note_forward();
                        let cost = self.network.cost(
                            &self.topology,
                            dest_pe,
                            actual_pe,
                            msg.wire_bytes(),
                        );
                        self.queue.schedule(
                            t + cost,
                            Event::Deliver {
                                msg,
                                dest_pe: actual_pe,
                                forwarded: true,
                            },
                        );
                    } else if self.reliable.is_some() {
                        self.receive_transport(msg, t);
                    } else {
                        self.deposit(msg);
                    }
                }
                Event::Ack { from, to, seq } => {
                    if let Some(rel) = self.reliable.as_mut() {
                        rel.inflight.remove(&(from, to, seq));
                    }
                }
                Event::Retransmit {
                    from,
                    to,
                    seq,
                    attempt,
                } => {
                    let key = (from, to, seq);
                    let in_flight = self
                        .reliable
                        .as_ref()
                        .is_some_and(|rel| rel.inflight.contains_key(&key));
                    if !in_flight {
                        continue; // acked since the timer was armed
                    }
                    let next = attempt + 1;
                    let (max_attempts, delivered) = {
                        let rel = self.reliable.as_ref().expect("reliable layer active");
                        let delivered = rel
                            .recv
                            .get(&(from, to))
                            .is_some_and(|p| p.next_expected > seq);
                        (rel.max_attempts, delivered)
                    };
                    if next >= max_attempts {
                        if delivered {
                            // The receiver released it; only the acks
                            // were lost. Stop retransmitting quietly.
                            self.reliable
                                .as_mut()
                                .expect("reliable layer active")
                                .inflight
                                .remove(&key);
                        } else {
                            return Err(RtsError::DeliveryFailed {
                                from,
                                to,
                                seq,
                                attempts: next,
                            });
                        }
                    } else {
                        let msg = self
                            .reliable
                            .as_ref()
                            .expect("reliable layer active")
                            .inflight
                            .get(&key)
                            .expect("checked in_flight")
                            .clone();
                        self.tallies.retransmits += 1;
                        let pe = self.ranks[from].location;
                        self.trace(
                            pe,
                            from as u32,
                            EventKind::MsgRetransmit {
                                from: from as u32,
                                to: to as u32,
                                seq,
                                attempt: next,
                            },
                        );
                        self.transmit(t, msg, next);
                    }
                }
                Event::PeWake { pe } => {
                    if !self.alive[pe] {
                        continue;
                    }
                    self.pes[pe].advance_to(t);
                    while let Some(r) = self.pes[pe].ready.pop_front() {
                        if self.ranks[r].status == RankStatus::Done {
                            continue;
                        }
                        if self.ranks[r].location != pe {
                            // migrated while queued; its new PE owns it
                            continue;
                        }
                        self.run_rank_slice(r)?;
                        if self.lb_due() {
                            self.do_lb_step()?;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("method", &self.method())
            .field("pes", &self.pes.len())
            .field("ranks", &self.ranks.len())
            .field("clock", &self.clock)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use pvr_progimage::{link, ImageSpec};

    fn test_binary() -> Arc<ProgramBinary> {
        link(
            ImageSpec::builder("rts-test")
                .global("my_rank", 8)
                .static_var("round", 8)
                .build(),
        )
    }

    fn builder() -> MachineBuilder {
        MachineBuilder::new(test_binary())
    }

    #[test]
    fn single_rank_runs_to_completion() {
        let mut m = builder()
            .build(Arc::new(|ctx: RankCtx| {
                assert_eq!(ctx.rank(), 0);
                assert_eq!(ctx.n_ranks(), 1);
            }))
            .unwrap();
        let report = m.run().unwrap();
        assert!(report.context_switches >= 1);
    }

    #[test]
    fn ping_pong_between_two_ranks() {
        let mut m = builder()
            .topology(Topology::smp(1))
            .vp_ratio(2)
            .build(Arc::new(|ctx: RankCtx| {
                if ctx.rank() == 0 {
                    ctx.send(1, 42, Bytes::from_static(b"ping"));
                    let m = ctx.recv();
                    assert_eq!(&m.payload[..], b"pong");
                    assert_eq!(m.from, 1);
                } else {
                    let m = ctx.recv();
                    assert_eq!(&m.payload[..], b"ping");
                    assert_eq!(m.tag, 42);
                    ctx.send(0, 43, Bytes::from_static(b"pong"));
                }
            }))
            .unwrap();
        let report = m.run().unwrap();
        assert_eq!(report.messages_delivered, 2);
    }

    #[test]
    fn virtual_time_advances_with_compute() {
        let mut m = builder()
            .clock(ClockMode::Virtual)
            .vp_ratio(2)
            .build(Arc::new(|ctx: RankCtx| {
                ctx.compute(SimDuration::from_millis(5));
                let t = ctx.wtime();
                assert!(t >= 0.005, "clock should show computed time, got {t}");
            }))
            .unwrap();
        let report = m.run().unwrap();
        // both ranks on one PE: serial in virtual time
        assert_eq!(report.sim_elapsed, SimDuration::from_millis(10));
    }

    #[test]
    fn virtual_time_parallel_pes_overlap() {
        let mut m = builder()
            .clock(ClockMode::Virtual)
            .topology(Topology::non_smp(4))
            .vp_ratio(1)
            .build(Arc::new(|ctx: RankCtx| {
                ctx.compute(SimDuration::from_millis(5));
            }))
            .unwrap();
        let report = m.run().unwrap();
        // 4 PEs work in parallel in virtual time
        assert_eq!(report.sim_elapsed, SimDuration::from_millis(5));
    }

    #[test]
    fn virtual_messages_charge_network_latency() {
        let mut m = builder()
            .clock(ClockMode::Virtual)
            .topology(Topology::non_smp(2))
            .build(Arc::new(|ctx: RankCtx| {
                if ctx.rank() == 0 {
                    ctx.send(1, 0, Bytes::from_static(b"x"));
                } else {
                    let _ = ctx.recv();
                    // inter-node latency is 2us minimum
                    assert!(ctx.wtime() >= 2e-6);
                }
            }))
            .unwrap();
        let report = m.run().unwrap();
        assert!(report.sim_elapsed >= SimDuration::from_micros(2));
    }

    #[test]
    fn overdecomposition_hides_latency() {
        // The core AMPI claim: with blocking ranks, more VPs per PE
        // overlap communication gaps with other ranks' compute.
        let body = |ctx: RankCtx| {
            // each rank: compute, exchange with partner on other node,
            // compute again
            let me = ctx.rank();
            let n = ctx.n_ranks();
            let partner = (me + n / 2) % n;
            for _ in 0..4 {
                ctx.compute(SimDuration::from_micros(10));
                ctx.send(partner, 0, Bytes::from(vec![0u8; 10_000]));
                let _ = ctx.recv();
            }
        };
        let run = |ratio: usize| -> SimDuration {
            let mut m = builder()
                .clock(ClockMode::Virtual)
                .topology(Topology::non_smp(2))
                .vp_ratio(ratio)
                .build(Arc::new(body))
                .unwrap();
            m.run().unwrap().sim_elapsed
        };
        let t1 = run(1);
        let t8 = run(8);
        // per-rank work grows 8x but elapsed should grow far less than 8x
        // because communication overlaps with other ranks' compute.
        let per_rank_t1 = t1.as_secs_f64();
        let per_rank_t8 = t8.as_secs_f64() / 8.0;
        assert!(
            per_rank_t8 < per_rank_t1 * 0.9,
            "overdecomposition should hide latency: t1={t1}, t8={t8}"
        );
    }

    #[test]
    fn deadlock_detected() {
        let mut m = builder()
            .vp_ratio(2)
            .build(Arc::new(|ctx: RankCtx| {
                let _ = ctx.recv(); // everyone waits, nobody sends
            }))
            .unwrap();
        match m.run() {
            Err(RtsError::Deadlock { waiting }) => assert_eq!(waiting, vec![0, 1]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn deadlock_detected_virtual() {
        let mut m = builder()
            .clock(ClockMode::Virtual)
            .vp_ratio(2)
            .build(Arc::new(|ctx: RankCtx| {
                if ctx.rank() == 1 {
                    let _ = ctx.recv();
                }
            }))
            .unwrap();
        match m.run() {
            Err(RtsError::Deadlock { waiting }) => assert_eq!(waiting, vec![1]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn rank_panic_surfaces_with_rank_id() {
        let mut m = builder()
            .vp_ratio(2)
            .build(Arc::new(|ctx: RankCtx| {
                if ctx.rank() == 1 {
                    panic!("sabotage");
                }
            }))
            .unwrap();
        match m.run() {
            Err(RtsError::RankPanicked { rank, message }) => {
                assert_eq!(rank, 1);
                assert!(message.contains("sabotage"));
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn globals_are_privatized_through_the_machine() {
        // The Fig. 2/3 scenario end-to-end: write rank id to a global,
        // exchange messages (forcing interleaving), read it back.
        let body = |ctx: RankCtx| {
            let me = ctx.rank();
            let acc = ctx.instance().access("my_rank");
            acc.write_u64(me as u64);
            // force a context switch to the other rank
            ctx.yield_now();
            ctx.yield_now();
            let observed = acc.read_u64();
            // under PIEglobals the value must still be ours
            assert_eq!(observed, me as u64, "global leaked across ranks");
        };
        let mut m = builder()
            .method(Method::PieGlobals)
            .vp_ratio(2)
            .build(Arc::new(body))
            .unwrap();
        m.run().unwrap();
    }

    #[test]
    fn unprivatized_exhibits_the_bug() {
        use std::sync::atomic::AtomicU64;
        let observed = Arc::new(AtomicU64::new(u64::MAX));
        let obs = observed.clone();
        let body = move |ctx: RankCtx| {
            let me = ctx.rank();
            let acc = ctx.instance().access("my_rank");
            acc.write_u64(me as u64);
            ctx.yield_now();
            ctx.yield_now();
            if me == 0 {
                obs.store(acc.read_u64(), Ordering::SeqCst);
            }
        };
        let mut m = builder()
            .method(Method::Unprivatized)
            .vp_ratio(2)
            .build(Arc::new(body))
            .unwrap();
        m.run().unwrap();
        // rank 0 sees rank 1's value — the paper's Fig. 3 output
        assert_eq!(observed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn migration_moves_rank_and_preserves_state() {
        let mut m = builder()
            .method(Method::PieGlobals)
            .topology(Topology::non_smp(2))
            .vp_ratio(1)
            .build(Arc::new(|ctx: RankCtx| {
                if ctx.rank() != 0 {
                    return; // only rank 0 participates
                }
                let acc = ctx.instance().access("my_rank");
                acc.write_u64(7777);
                let _ = ctx.recv(); // park so the driver can migrate us
                assert_eq!(acc.read_u64(), 7777, "state must survive migration");
            }))
            .unwrap();
        // run rank 0 until it parks in recv: drive manually
        assert!(matches!(
            m.run_rank_slice(0),
            Ok(StopReason::BlockedRecv)
        ));
        let rec = m.migrate_now(0, 1).unwrap();
        assert_eq!(rec.from_pe, 0);
        assert_eq!(rec.to_pe, 1);
        assert!(rec.bytes > 128 * 1024, "stack+heap+segments must move");
        assert_eq!(m.location_of(0), 1);
        // wake it up and finish
        m.deposit(RtsMessage::new(1, 0, 0, Bytes::new()));
        m.run().unwrap();
    }

    #[test]
    fn migration_rejected_for_non_migratable_methods() {
        let mut m = builder()
            .method(Method::PipGlobals)
            .topology(Topology::non_smp(2))
            .build(Arc::new(|_ctx: RankCtx| {}))
            .unwrap();
        match m.migrate_now(0, 1) {
            Err(RtsError::BadMigration { detail, .. }) => {
                assert!(detail.contains("Isomalloc"))
            }
            other => panic!("expected BadMigration, got {other:?}"),
        }
    }

    #[test]
    fn at_sync_with_greedy_lb_rebalances() {
        use crate::lb::GreedyLb;
        // 4 ranks on 2 PEs; ranks 0,1 (PE 0) are heavy. After AtSync+LB,
        // heavy ranks should be split across PEs.
        let mut m = builder()
            .method(Method::PieGlobals)
            .clock(ClockMode::Virtual)
            .topology(Topology::non_smp(2))
            .vp_ratio(2)
            .balancer(Box::new(GreedyLb))
            .build(Arc::new(|ctx: RankCtx| {
                for _round in 0..2 {
                    let work = if ctx.rank() < 2 { 80 } else { 1 };
                    ctx.compute(SimDuration::from_millis(work));
                    ctx.at_sync();
                }
            }))
            .unwrap();
        let report = m.run().unwrap();
        assert_eq!(report.lb_steps, 2);
        assert!(!report.migrations.is_empty(), "LB must move ranks");
        // after LB the heavy ranks are on different PEs
        assert_ne!(m.location_of(0), m.location_of(1));
        // and the run is faster than the unbalanced serial 2*160ms
        assert!(report.sim_elapsed < SimDuration::from_millis(250));
    }

    #[test]
    fn lb_history_records_imbalance_reduction() {
        use crate::lb::GreedyLb;
        let mut m = builder()
            .method(Method::PieGlobals)
            .clock(ClockMode::Virtual)
            .topology(Topology::non_smp(2))
            .vp_ratio(4)
            .balancer(Box::new(GreedyLb))
            .build(Arc::new(|ctx: RankCtx| {
                for _ in 0..2 {
                    // ranks 0..4 (all on PE 0 initially) are heavy
                    let work = if ctx.rank() < 4 { 50 } else { 1 };
                    ctx.compute(SimDuration::from_millis(work));
                    ctx.at_sync();
                }
            }))
            .unwrap();
        let report = m.run().unwrap();
        assert_eq!(report.lb_history.len(), 2);
        let first = &report.lb_history[0];
        assert!(first.imbalance_before() > 1.5, "block map is imbalanced");
        assert!(
            first.imbalance_after() < first.imbalance_before(),
            "greedy must reduce imbalance: {} -> {}",
            first.imbalance_before(),
            first.imbalance_after()
        );
        assert!(first.migrations > 0);
        assert_eq!(first.step, 1);
    }

    #[test]
    fn lb_improves_makespan_vs_null() {
        use crate::lb::GreedyRefineLb;
        let body = |ctx: RankCtx| {
            for _round in 0..4 {
                // all the heavy ranks start block-mapped onto PE 0
                let work = if ctx.rank() < 4 { 40 } else { 1 };
                ctx.compute(SimDuration::from_millis(work));
                ctx.at_sync();
            }
        };
        let run = |lb: Option<Box<dyn LoadBalancer>>| {
            let mut b = builder()
                .method(Method::PieGlobals)
                .clock(ClockMode::Virtual)
                .topology(Topology::non_smp(4))
                .vp_ratio(4);
            if let Some(lb) = lb {
                b = b.balancer(lb);
            }
            let mut m = b.build(Arc::new(body)).unwrap();
            m.run().unwrap().sim_elapsed
        };
        let without = run(None);
        let with = run(Some(Box::new(GreedyRefineLb::default())));
        assert!(
            with < without,
            "LB should improve imbalanced run: {with} !< {without}"
        );
    }

    #[test]
    fn startup_reports_costs() {
        let m = builder()
            .method(Method::FsGlobals)
            .vp_ratio(4)
            .build(Arc::new(|_ctx: RankCtx| {}))
            .unwrap();
        assert!(m.simulated_startup_cost() > Duration::ZERO);
        assert!(m.per_rank_copied_bytes() > 0);
    }

    #[test]
    fn pip_namespace_exhaustion_at_build_time() {
        // 16 VPs on one PE needs 16 namespaces: stock glibc caps at 12.
        let err = builder()
            .method(Method::PipGlobals)
            .vp_ratio(16)
            .build(Arc::new(|_ctx: RankCtx| {}));
        match err {
            Err(RtsError::Privatize(PrivatizeError::Dl(
                pvr_progimage::DlError::NamespaceExhausted { .. },
            ))) => {}
            other => panic!("expected namespace exhaustion, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn wildcard_timer_monotone() {
        let mut m = builder()
            .clock(ClockMode::Virtual)
            .build(Arc::new(|ctx: RankCtx| {
                let t0 = ctx.wtime();
                ctx.compute(SimDuration::from_millis(1));
                let t1 = ctx.wtime();
                assert!(t1 >= t0 + 0.001);
            }))
            .unwrap();
        m.run().unwrap();
    }

    #[test]
    fn empty_pe_reduction_error_under_pieglobals() {
        use pvr_progimage::FunctionSpec;
        let bin = link(
            ImageSpec::builder("op-test")
                .global("g", 8)
                .function(FunctionSpec::new("combine", 64).with_callable(Arc::new(|_i, _o| {})))
                .build(),
        );
        let mut m = MachineBuilder::new(bin)
            .method(Method::PieGlobals)
            .topology(Topology::non_smp(2))
            .vp_ratio(1)
            .build(Arc::new(|ctx: RankCtx| {
                if ctx.rank() == 0 {
                    let _ = ctx.recv();
                }
            }))
            .unwrap();
        let offset = m.privatizer(0).fn_offset_of("combine").unwrap();
        // both PEs have a rank: resolution works everywhere
        assert!(m.resolve_op_on_pe(0, offset).is_ok());
        assert!(m.resolve_op_on_pe(1, offset).is_ok());
        // park rank 0, move it away: PE 0 becomes empty
        assert!(matches!(m.run_rank_slice(0), Ok(StopReason::BlockedRecv)));
        m.migrate_now(0, 1).unwrap();
        match m.resolve_op_on_pe(0, offset) {
            Err(RtsError::EmptyPeReduction { pe }) => assert_eq!(pe, 0),
            other => panic!("expected EmptyPeReduction, got {:?}", other.map(|_| ())),
        }
        // under TLSglobals the same situation is fine (shared code)
        let bin2 = link(
            ImageSpec::builder("op-test2")
                .global("g", 8)
                .function(FunctionSpec::new("combine", 64).with_callable(Arc::new(|_i, _o| {})))
                .build(),
        );
        let m2 = MachineBuilder::new(bin2)
            .method(Method::TlsGlobals)
            .topology(Topology::non_smp(2))
            .vp_ratio(1)
            .build(Arc::new(|_ctx: RankCtx| {}))
            .unwrap();
        assert!(m2.resolve_op_on_pe(0, offset).is_ok());
    }

    #[test]
    fn code_dedup_migration_skips_code_segments() {
        let build = |dedup: bool| {
            let mut m = builder()
                .method(Method::PieGlobals)
                .topology(Topology::non_smp(2))
                .code_dedup_migration(dedup)
                .build(Arc::new(|ctx: RankCtx| {
                    if ctx.rank() == 0 {
                        let _ = ctx.recv();
                    }
                }))
                .unwrap();
            m.drive_rank(0).unwrap();
            let rec = m.migrate_now(0, 1).unwrap();
            m.inject_message(RtsMessage::new(1, 0, 0, Bytes::new()));
            m.run().unwrap();
            rec.bytes
        };
        let full = build(false);
        let dedup = build(true);
        // test binary has a small code segment, but the delta must be
        // exactly visible
        assert!(
            dedup < full,
            "dedup migration must move fewer bytes: {dedup} vs {full}"
        );
    }

    #[test]
    fn checkpoint_restart_recovers_from_soft_fault() {
        use parking_lot::Mutex;
        // A checkpoint-compliant body: cross-sync state lives in the rank
        // heap and in stack scalars (as Isomalloc requires), and the
        // network is quiescent at every sync point.
        let finals: Arc<Mutex<Vec<(usize, f64, f64)>>> = Arc::new(Mutex::new(Vec::new()));
        let body_for = |finals: Arc<Mutex<Vec<(usize, f64, f64)>>>| -> Arc<dyn Fn(RankCtx) + Send + Sync> {
            Arc::new(move |ctx: RankCtx| {
                let data = ctx.heap_alloc_f64s(64);
                let mut acc: f64 = ctx.rank() as f64 + 1.0;
                for step in 0..6u64 {
                    for v in data.iter_mut() {
                        *v += acc;
                    }
                    // lock-step ring exchange (fully drained before sync)
                    let partner = (ctx.rank() + 1) % ctx.n_ranks();
                    ctx.send(
                        partner,
                        step,
                        bytes::Bytes::copy_from_slice(&acc.to_le_bytes()),
                    );
                    let m = ctx.recv();
                    acc = acc * 1.25 + f64::from_le_bytes(m.payload[..8].try_into().unwrap());
                    ctx.at_sync();
                }
                let sum: f64 = data.iter().sum();
                finals.lock().push((ctx.rank(), acc, sum));
            })
        };

        // reference run: no faults
        let f1 = finals.clone();
        let mut m = builder()
            .method(Method::PieGlobals)
            .topology(Topology::non_smp(2))
            .vp_ratio(2)
            .checkpoint_period(1)
            .build(body_for(f1))
            .unwrap();
        m.run().unwrap();
        let mut reference = finals.lock().clone();
        reference.sort_by_key(|a| a.0);
        finals.lock().clear();
        let (ckpts, recov) = m.fault_tolerance_stats();
        assert!(ckpts >= 5);
        assert_eq!(recov, 0);

        // faulty run: memory scribbled at LB step 3, recovered from the
        // step-3 checkpoint, recomputes forward
        let f2 = finals.clone();
        let mut m = builder()
            .method(Method::PieGlobals)
            .topology(Topology::non_smp(2))
            .vp_ratio(2)
            .checkpoint_period(1)
            .inject_fault_at_lb_step(3)
            .build(body_for(f2))
            .unwrap();
        m.run().unwrap();
        let (_, recov) = m.fault_tolerance_stats();
        assert_eq!(recov, 1, "the injected fault must trigger one recovery");
        let mut faulty = finals.lock().clone();
        faulty.sort_by_key(|a| a.0);
        assert_eq!(
            faulty, reference,
            "recovered run must produce identical results"
        );
    }

    #[test]
    fn fault_without_checkpoint_is_an_error() {
        // caught at build time now: a fault schedule with no checkpoint
        // period can never recover, so the configuration is rejected
        // before any rank runs
        match builder()
            .vp_ratio(2)
            .method(Method::PieGlobals)
            .inject_fault_at_lb_step(1)
            .build(Arc::new(|ctx: RankCtx| {
                ctx.at_sync();
            })) {
            Err(RtsError::Config { detail }) => {
                assert!(detail.contains("checkpoint_period"), "{detail}")
            }
            other => panic!("expected Config error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn pe_failure_without_checkpoint_is_an_error() {
        match builder()
            .clock(ClockMode::Virtual)
            .topology(Topology::non_smp(2))
            .inject_pe_failure_at_lb_step(1, 1)
            .build(Arc::new(|ctx: RankCtx| {
                ctx.at_sync();
            })) {
            Err(RtsError::Config { detail }) => {
                assert!(detail.contains("checkpoint_period"), "{detail}")
            }
            other => panic!("expected Config error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn pe_failure_target_must_exist() {
        match builder()
            .clock(ClockMode::Virtual)
            .topology(Topology::non_smp(2))
            .checkpoint_period(1)
            .inject_pe_failure_at_lb_step(1, 7)
            .build(Arc::new(|ctx: RankCtx| {
                ctx.at_sync();
            })) {
            Err(RtsError::Config { detail }) => {
                assert!(detail.contains("out of range"), "{detail}")
            }
            other => panic!("expected Config error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn fault_plan_requires_virtual_clock() {
        use pvr_des::FaultPlan;
        let net = NetworkModel::infiniband().with_faults(FaultPlan::lossy_internode(1, 0.1, 0.0));
        match builder()
            .network(net)
            .checkpoint_period(1)
            .build(Arc::new(|_ctx: RankCtx| {})) {
            Err(RtsError::Config { detail }) => {
                assert!(detail.contains("Virtual"), "{detail}")
            }
            other => panic!("expected Config error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn fallback_degrades_pip_to_fs_and_matches_direct_run() {
        // The acceptance scenario: PIPglobals requested with 16 ranks per
        // process on stock glibc (12-namespace budget). With the fallback
        // chain on, the probe rates PIPglobals resource-limited, degrades
        // to FSglobals, and the run completes with results bit-identical
        // to a direct FSglobals run.
        let body_for = |sink: Arc<Mutex<Vec<(usize, u64)>>>| -> Arc<dyn Fn(RankCtx) + Send + Sync> {
            Arc::new(move |ctx: RankCtx| {
                let me = ctx.rank();
                let acc = ctx.instance().access("my_rank");
                acc.write_u64(me as u64 * 3 + 1);
                ctx.yield_now();
                sink.lock().push((me, acc.read_u64()));
            })
        };
        let run = |fallback: bool, method: Method| {
            let out: Arc<Mutex<Vec<(usize, u64)>>> = Arc::new(Mutex::new(Vec::new()));
            let t = Tracer::new(1);
            t.enable();
            let mut b = builder().method(method).vp_ratio(16).tracer(t.clone());
            if fallback {
                b = b.fallback(true);
            }
            let mut m = b.build(body_for(out.clone())).unwrap();
            let report = m.run().unwrap();
            // trace events and RunReport tallies reconcile exactly
            let c = t.snapshot().counts;
            assert_eq!(c.method_probes, report.hardening.probes);
            assert_eq!(c.method_fallbacks, report.hardening.fallbacks);
            let landed = m.method();
            let mut v = out.lock().clone();
            v.sort();
            (landed, report, v)
        };
        let (landed, report, results) = run(true, Method::PipGlobals);
        assert_eq!(landed, Method::FsGlobals);
        assert_eq!(report.method_requested, Method::PipGlobals);
        assert_eq!(report.method_landed, Method::FsGlobals);
        assert_eq!(report.hardening.probes, 3, "pip, fs, pie each probed");
        assert_eq!(report.hardening.fallbacks, 1);
        assert_eq!(results.len(), 16);
        let (direct_landed, direct_report, direct_results) = run(false, Method::FsGlobals);
        assert_eq!(direct_landed, Method::FsGlobals);
        assert!(direct_report.hardening.is_clean(), "strict mode probes nothing");
        assert_eq!(
            results, direct_results,
            "degraded run must be bit-identical to the direct FSglobals run"
        );
    }

    #[test]
    fn midstartup_fs_failure_degrades_and_cleans_up() {
        // The probe passes (unbounded FS) but the injected write budget
        // runs dry at rank 2's copy: mid-startup degradation tears the
        // FSglobals attempt down (no leaked copies), skips the
        // probe-infeasible PIPglobals, and lands on PIEglobals.
        let fs = Arc::new(Mutex::new(SharedFs::new()));
        fs.lock().fail_writes_after(3); // deploy + 2 rank copies, then NoSpace
        let t = Tracer::new(1);
        t.enable();
        let mut m = builder()
            .method(Method::FsGlobals)
            .shared_fs(Some(fs.clone()))
            .vp_ratio(16)
            .fallback(true)
            .tracer(t.clone())
            .build(Arc::new(|_ctx: RankCtx| {}))
            .unwrap();
        assert_eq!(m.method_requested(), Method::FsGlobals);
        assert_eq!(m.method(), Method::PieGlobals);
        assert_eq!(fs.lock().file_count(), 0, "failed attempt must delete its copies");
        assert_eq!(fs.lock().bytes_used(), 0);
        m.run().unwrap();
        let h = m.hardening_stats();
        assert_eq!(h.probes, 3);
        assert_eq!(h.fallbacks, 2, "fs (mid-startup) -> pip (probe) -> pie");
        let c = t.snapshot().counts;
        assert_eq!(c.method_fallbacks, h.fallbacks);
        assert_eq!(c.method_probes, h.probes);
    }

    #[test]
    fn fallback_exhaustion_reports_every_failure() {
        // FS capped so FSglobals can't fit, 16 ranks so PIPglobals can't
        // either, and a chain without PIEglobals: nothing lands.
        let fs = Arc::new(Mutex::new(SharedFs::with_capacity(1024)));
        match builder()
            .method(Method::PipGlobals)
            .shared_fs(Some(fs))
            .vp_ratio(16)
            .fallback_chain(vec![Method::FsGlobals])
            .build(Arc::new(|_ctx: RankCtx| {}))
        {
            Err(RtsError::NoFeasibleMethod { detail }) => {
                assert!(detail.contains("pipglobals"), "{detail}");
                assert!(detail.contains("fsglobals"), "{detail}");
            }
            other => panic!("expected NoFeasibleMethod, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn guards_rejected_for_unprivatized_method() {
        match builder()
            .method(Method::Unprivatized)
            .guards(true)
            .build(Arc::new(|_ctx: RankCtx| {}))
        {
            Err(RtsError::Config { detail }) => {
                assert!(detail.contains("guards"), "{detail}")
            }
            other => panic!("expected Config error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn fallback_chain_rejects_env_unsupported_entry() {
        // Swapglobals can never run under the default (bridges2)
        // toolchain: naming it as a backup is a configuration error.
        match builder()
            .method(Method::PieGlobals)
            .fallback_chain(vec![Method::Swapglobals])
            .build(Arc::new(|_ctx: RankCtx| {}))
        {
            Err(RtsError::Config { detail }) => {
                assert!(detail.contains("fallback_chain"), "{detail}");
                assert!(detail.contains("swapglobals"), "{detail}");
            }
            other => panic!("expected Config error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn empty_fallback_chain_rejected() {
        match builder()
            .fallback_chain(vec![])
            .build(Arc::new(|_ctx: RankCtx| {}))
        {
            Err(RtsError::Config { detail }) => {
                assert!(detail.contains("fallback_chain"), "{detail}")
            }
            other => panic!("expected Config error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn scribbled_stack_trips_guard_with_clean_error() {
        let t = Tracer::new(1);
        t.enable();
        let mut m = builder()
            .method(Method::PieGlobals)
            .guards(true)
            .tracer(t.clone())
            .build(Arc::new(|ctx: RankCtx| {
                ctx.yield_now();
            }))
            .unwrap();
        m.corrupt_rank_stack(0);
        match m.run() {
            Err(RtsError::StackGuard { rank, detail }) => {
                assert_eq!(rank, 0);
                assert!(detail.contains("red zone"), "{detail}");
            }
            other => panic!("expected StackGuard, got {:?}", other.map(|_| ())),
        }
        assert_eq!(m.hardening_stats().stack_guard_trips, 1);
        assert_eq!(t.snapshot().counts.stack_guard_trips, 1);
    }

    #[test]
    fn double_free_trips_arena_guard() {
        let t = Tracer::new(1);
        t.enable();
        let mut m = builder()
            .method(Method::PieGlobals)
            .guards(true)
            .tracer(t.clone())
            .build(Arc::new(|ctx: RankCtx| {
                let p = ctx.heap_alloc(64, 8);
                ctx.heap_free(p, 64);
                ctx.heap_free(p, 64);
            }))
            .unwrap();
        match m.run() {
            Err(RtsError::ArenaGuard { rank, detail }) => {
                assert_eq!(rank, 0);
                assert!(detail.contains("double free"), "{detail}");
            }
            other => panic!("expected ArenaGuard, got {:?}", other.map(|_| ())),
        }
        assert_eq!(m.hardening_stats().arena_guard_trips, 1);
        assert_eq!(t.snapshot().counts.arena_guard_trips, 1);
    }

    #[test]
    fn valid_free_and_reuse_pass_the_guard() {
        let mut m = builder()
            .method(Method::PieGlobals)
            .guards(true)
            .build(Arc::new(|ctx: RankCtx| {
                let p = ctx.heap_alloc(64, 8);
                unsafe { std::ptr::write_bytes(p, 7, 64) };
                ctx.heap_free(p, 64);
                let q = ctx.heap_alloc(64, 8);
                unsafe { std::ptr::write_bytes(q, 9, 64) };
                ctx.heap_free(q, 64);
            }))
            .unwrap();
        let report = m.run().unwrap();
        assert_eq!(report.hardening.arena_guard_trips, 0);
        assert_eq!(report.hardening.stack_guard_trips, 0);
    }

    #[test]
    fn use_after_free_detected_at_the_barrier() {
        let t = Tracer::new(1);
        t.enable();
        let mut m = builder()
            .method(Method::PieGlobals)
            .guards(true)
            .tracer(t.clone())
            .build(Arc::new(|ctx: RankCtx| {
                let p = ctx.heap_alloc(64, 8);
                ctx.heap_free(p, 64);
                unsafe { *p = 1 }; // write through the stale pointer
                ctx.at_sync();
            }))
            .unwrap();
        match m.run() {
            Err(RtsError::ArenaGuard { rank, detail }) => {
                assert_eq!(rank, 0);
                assert!(detail.contains("use-after-free"), "{detail}");
            }
            other => panic!("expected ArenaGuard, got {:?}", other.map(|_| ())),
        }
        assert_eq!(t.snapshot().counts.arena_guard_trips, 1);
    }

    #[test]
    fn cross_rank_segment_bleed_is_detected_and_attributed() {
        let t = Tracer::new(1);
        t.enable();
        let mut m = builder()
            .method(Method::PieGlobals)
            .vp_ratio(2)
            .guards(true)
            .tracer(t.clone())
            .build(Arc::new(|ctx: RankCtx| {
                ctx.yield_now();
            }))
            .unwrap();
        m.corrupt_rank_segment(1);
        match m.run() {
            Err(RtsError::SegmentBleed { rank, writer }) => {
                assert_eq!(rank, 1, "rank 1's segment was dirtied");
                assert_eq!(writer, 0, "rank 0 held the PE when it was detected");
            }
            other => panic!("expected SegmentBleed, got {:?}", other.map(|_| ())),
        }
        assert_eq!(m.hardening_stats().segment_audits, 1);
        assert_eq!(t.snapshot().counts.segment_audits, 1);
    }

    #[test]
    fn guarded_run_stays_clean_and_audits_at_barriers() {
        let t = Tracer::new(1);
        t.enable();
        let mut m = builder()
            .method(Method::PieGlobals)
            .vp_ratio(2)
            .guards(true)
            .tracer(t.clone())
            .build(Arc::new(|ctx: RankCtx| {
                let me = ctx.rank();
                let acc = ctx.instance().access("my_rank");
                for _ in 0..2 {
                    acc.write_u64(me as u64);
                    ctx.yield_now();
                    assert_eq!(acc.read_u64(), me as u64);
                    ctx.at_sync();
                }
            }))
            .unwrap();
        let report = m.run().unwrap();
        assert_eq!(report.lb_steps, 2);
        assert_eq!(report.hardening.segment_audits, 2, "one audit per barrier");
        assert_eq!(report.hardening.stack_guard_trips, 0);
        assert_eq!(report.hardening.arena_guard_trips, 0);
        assert_eq!(t.snapshot().counts.segment_audits, report.hardening.segment_audits);
    }

    #[test]
    fn guards_survive_checkpoint_recovery_without_false_trips() {
        // A soft fault scribbles all rank memory (segment copies and
        // poisoned quarantine ranges included); recovery restores the
        // checkpoint and reseeds the guard state, so no false trips fire.
        let mut m = builder()
            .method(Method::PieGlobals)
            .vp_ratio(2)
            .guards(true)
            .checkpoint_period(1)
            .inject_fault_at_lb_step(2)
            .build(Arc::new(|ctx: RankCtx| {
                let p = ctx.heap_alloc(32, 8);
                ctx.heap_free(p, 32); // leaves a poisoned quarantine range
                let acc = ctx.instance().access("my_rank");
                for step in 0..3u64 {
                    acc.write_u64(ctx.rank() as u64 + step);
                    ctx.at_sync();
                    assert_eq!(acc.read_u64(), ctx.rank() as u64 + step);
                }
            }))
            .unwrap();
        let report = m.run().unwrap();
        assert_eq!(report.faults.recoveries, 1);
        assert_eq!(report.hardening.stack_guard_trips, 0);
        assert_eq!(report.hardening.arena_guard_trips, 0);
    }

    #[test]
    fn smp_topology_message_costs_cheaper_than_internode() {
        let run = |topo: Topology| -> SimDuration {
            let mut m = builder()
                .clock(ClockMode::Virtual)
                .topology(topo)
                .vp_ratio(1)
                .build(Arc::new(|ctx: RankCtx| {
                    if ctx.rank() == 0 {
                        ctx.send(1, 0, Bytes::from(vec![0u8; 1 << 20]));
                    } else {
                        let _ = ctx.recv();
                    }
                }))
                .unwrap();
            m.run().unwrap().sim_elapsed
        };
        let smp = run(Topology::smp(2)); // same process
        let non_smp = run(Topology::non_smp(2)); // different nodes
        assert!(
            smp < non_smp,
            "SMP-mode shared-memory path must be cheaper: {smp} vs {non_smp}"
        );
    }
}
