//! The machine: topology + PEs + ranks + scheduler + migration + LB.
//!
//! One `Machine` is a whole simulated job (possibly many nodes/processes/
//! PEs), driven deterministically by one OS thread. See the crate docs
//! for the real-time vs virtual-time distinction.

use crate::command::Response;
use crate::config::Parallelism;
use crate::lb::{LbStats, LoadBalancer};
use crate::location::LocationManager;
use crate::message::RtsMessage;
use crate::pe::PeState;
use crate::rank::RankStatus;
use crate::stats::{CowTallies, EngineTallies};
pub use crate::stats::{FaultTallies, HardeningTallies, LbRecord, MigrationRecord, RunReport};
use crate::worker::{
    self, EngineShared, GuardCtx, HlsBlocks, Lane, Outbox, RankTable, StopReason,
};
use crate::{engine_parallel, engine_serial, PeId, RankId};
use parking_lot::Mutex;
use pvr_des::{EventQueue, FaultPlan, NetworkModel, SimDuration, SimTime, Topology};
use pvr_isomalloc::{GuardViolation, RegionKind};
use pvr_privatize::{Method, PrivatizeError, Privatizer};
use pvr_trace::{ArenaTrip, EventKind, Tracer, NO_RANK};
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How time passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Wall-clock: real execution, measured externally (Figs. 5–8).
    RealTime,
    /// Discrete-event virtual time (Fig. 9 / Table 2 scaling runs).
    Virtual,
}

/// Runtime errors.
#[derive(Debug)]
pub enum RtsError {
    Privatize(PrivatizeError),
    /// All live ranks are blocked and no event can wake them.
    Deadlock { waiting: Vec<RankId> },
    /// A rank's body panicked.
    RankPanicked { rank: RankId, message: String },
    /// A rank yielded outside the command protocol.
    Protocol { rank: RankId, detail: String },
    /// Invalid migration request.
    BadMigration { rank: RankId, detail: String },
    /// A user reduction operator had to be applied on a PE hosting no
    /// virtual ranks — under PIEglobals there is no image base to anchor
    /// the function-pointer offset (§3.3's documented runtime error).
    EmptyPeReduction { pe: PeId },
    /// The reliable-delivery layer exhausted its retransmit budget for a
    /// message that was never delivered.
    DeliveryFailed {
        from: RankId,
        to: RankId,
        seq: u64,
        attempts: u32,
    },
    /// A ULT stack red zone was found clobbered at a guard check: the
    /// rank overflowed (or scribbled past) its stack. The corrupt stack
    /// is never resumed or unwound.
    StackGuard { rank: RankId, detail: String },
    /// The Isomalloc arena guard caught an invalid free or a write
    /// through a stale pointer in this rank's heap.
    ArenaGuard { rank: RankId, detail: String },
    /// The segment-integrity audit found `rank`'s privatized data
    /// segment modified outside its owner's execution — a cross-rank
    /// global bleed, attributed to the rank on the PE when it was
    /// detected ([`crate::RankId::MAX`] when no rank had run since).
    SegmentBleed { rank: RankId, writer: RankId },
    /// Recovery found a rank whose checkpoint image is unreachable: both
    /// the primary holder and the buddy holder are dead (a cascading
    /// double loss that outran the buddy scheme's redundancy).
    CheckpointLost {
        rank: RankId,
        primary_pe: PeId,
        buddy_pe: PeId,
    },
    /// A rank posted a nonblocking request past the configured
    /// per-rank cap (`MachineConfig::max_outstanding_reqs`) — requests
    /// are leaking (posted but never waited on or reaped).
    RequestOverflow {
        rank: RankId,
        outstanding: usize,
        limit: usize,
    },
}

impl fmt::Display for RtsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtsError::Privatize(e) => write!(f, "privatization: {e}"),
            RtsError::Deadlock { waiting } => {
                write!(f, "deadlock: ranks {waiting:?} blocked forever")
            }
            RtsError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            RtsError::Protocol { rank, detail } => write!(f, "rank {rank}: {detail}"),
            RtsError::BadMigration { rank, detail } => {
                write!(f, "cannot migrate rank {rank}: {detail}")
            }
            RtsError::EmptyPeReduction { pe } => write!(
                f,
                "PE {pe} has no resident virtual ranks: cannot translate a user \
                 reduction operator's offset to an address under PIEglobals"
            ),
            RtsError::DeliveryFailed {
                from,
                to,
                seq,
                attempts,
            } => write!(
                f,
                "message {from}->{to} seq {seq} undeliverable after {attempts} attempts"
            ),
            RtsError::StackGuard { rank, detail } => {
                write!(f, "rank {rank} stack guard tripped: {detail}")
            }
            RtsError::ArenaGuard { rank, detail } => {
                write!(f, "rank {rank} heap guard tripped: {detail}")
            }
            RtsError::SegmentBleed { rank, writer } => {
                if *writer == RankId::MAX {
                    write!(
                        f,
                        "rank {rank}'s privatized data segment changed outside any \
                         rank's execution (cross-rank global bleed, writer unknown)"
                    )
                } else {
                    write!(
                        f,
                        "rank {rank}'s privatized data segment was modified while rank \
                         {writer} was running (cross-rank global bleed)"
                    )
                }
            }
            RtsError::CheckpointLost {
                rank,
                primary_pe,
                buddy_pe,
            } => write!(
                f,
                "rank {rank}'s checkpoint is lost: both holders (PE {primary_pe} \
                 and buddy PE {buddy_pe}) are dead"
            ),
            RtsError::RequestOverflow {
                rank,
                outstanding,
                limit,
            } => write!(
                f,
                "rank {rank} has {outstanding} outstanding nonblocking requests \
                 (cap {limit}): requests are being posted without being waited on"
            ),
        }
    }
}

impl std::error::Error for RtsError {}

impl From<PrivatizeError> for RtsError {
    fn from(e: PrivatizeError) -> Self {
        RtsError::Privatize(e)
    }
}

/// Virtual-mode events.
pub(crate) enum Event {
    Deliver {
        msg: RtsMessage,
        dest_pe: PeId,
        forwarded: bool,
    },
    PeWake {
        pe: PeId,
    },
    /// Reliable delivery: an acknowledgement for `(from, to, seq)`
    /// arrived back at the sender.
    Ack {
        from: RankId,
        to: RankId,
        seq: u64,
    },
    /// Reliable delivery: the retransmit timer armed at transmission
    /// `attempt` of `(from, to, seq)` fired.
    Retransmit {
        from: RankId,
        to: RankId,
        seq: u64,
        attempt: u32,
    },
}

/// Per-(src,dst) receive state of the reliable-delivery layer: in-order
/// exactly-once delivery via a reorder buffer keyed by sequence number.
pub(crate) struct PairRecv {
    /// Next sequence number to release to the application (seqs are
    /// assigned from 1).
    pub(crate) next_expected: u64,
    /// Out-of-order arrivals awaiting the gap to fill.
    pub(crate) pending: std::collections::BTreeMap<u64, RtsMessage>,
    /// Monotonic ack instance counter for this pair (keys ack fault
    /// decisions; per-pair so decisions are independent of cross-pair
    /// event interleaving and thus identical across engine parallelism).
    pub(crate) ack_seq: u64,
}

impl Default for PairRecv {
    fn default() -> Self {
        PairRecv {
            next_expected: 1,
            pending: Default::default(),
            ack_seq: 0,
        }
    }
}

/// Sender/receiver state of the reliable-delivery layer, active when a
/// [`FaultPlan`] is attached to the network model (virtual clock only).
///
/// This state intentionally lives *outside* rank memory: it rolls
/// forward across checkpoint rollback, so replayed application sends get
/// fresh sequence numbers and both endpoints stay consistent.
pub(crate) struct ReliableState {
    pub(crate) plan: FaultPlan,
    /// Base retransmission timeout added on top of the modeled path cost.
    pub(crate) base_rto: SimDuration,
    /// Total transmission attempts allowed per message (1 original +
    /// `max_attempts - 1` retransmits).
    pub(crate) max_attempts: u32,
    /// Next sequence number per (src, dst) pair.
    pub(crate) send_seq: std::collections::HashMap<(RankId, RankId), u64>,
    /// Unacknowledged messages by (src, dst, seq).
    pub(crate) inflight: std::collections::HashMap<(RankId, RankId, u64), RtsMessage>,
    /// Receive-side dedup/reorder state per (src, dst) pair.
    pub(crate) recv: std::collections::HashMap<(RankId, RankId), PairRecv>,
}

/// One incremental checkpoint delta for one rank: the sparse patch that
/// turns the previous capture's image into this capture's image.
///
/// The primary copy (`patch`) exists as soon as the delta is captured;
/// the buddy copy (`buddy_patch`) appears only when the delta is
/// *sealed* at the next LB barrier — modeling the asynchronous stream to
/// the buddy PE completing between barriers. A restore that must fall
/// back to the buddy can therefore only use the sealed prefix of the
/// chain (the consistent cut).
struct RankDelta {
    /// Primary copy of the sparse patch (home PE).
    patch: pvr_isomalloc::ImageDelta,
    /// Buddy copy; `Some` once the async stream sealed at a barrier.
    buddy_patch: Option<pvr_isomalloc::ImageDelta>,
    /// Checksum of `patch` at capture time, verified before restore.
    checksum: u64,
    /// Suspended stack pointer observed together with this capture.
    sp: Option<usize>,
    /// Request-engine state observed together with this capture.
    req: crate::rank::ReqSnapshot,
    /// Dirty-epoch floor for the *next* delta capture of this rank's COW
    /// segment (0 when the rank has no COW segment).
    cow_since: u64,
}

/// One rank's entry in a coordinated checkpoint. The image is held
/// twice — at the rank's home PE and at that PE's buddy — so a single
/// PE failure cannot lose it. In incremental mode a bounded chain of
/// [`RankDelta`]s rides on top of the base image.
struct CheckpointEntry {
    image: pvr_isomalloc::MigrationBuffer,
    buddy_image: pvr_isomalloc::MigrationBuffer,
    /// Suspended stack pointer observed together with the image.
    sp: Option<usize>,
    /// Request-engine state observed together with the image, restored
    /// with it so rolled-back ranks see the barrier's request table.
    req: crate::rank::ReqSnapshot,
    /// Checksum of the image at pack time, verified before restore.
    checksum: u64,
    /// PE holding `image`.
    primary_pe: PeId,
    /// PE holding `buddy_image`.
    buddy_pe: PeId,
    /// Incremental delta chain on top of `image`, oldest first.
    deltas: Vec<RankDelta>,
    /// `image` with every chained delta applied — the diff target for
    /// the next capture. `None` while the chain is empty (the base
    /// itself is the target).
    accum: Option<pvr_isomalloc::MigrationBuffer>,
    /// Dirty-epoch floor for the first delta after the base capture.
    base_cow_since: u64,
}

impl CheckpointEntry {
    /// The image the next incremental capture diffs against.
    fn diff_target(&self) -> &pvr_isomalloc::MigrationBuffer {
        self.accum.as_ref().unwrap_or(&self.image)
    }
}

/// A coordinated checkpoint: one entry per rank, taken at an LB barrier.
pub(crate) struct Checkpoint {
    entries: Vec<CheckpointEntry>,
    /// True while the most recent delta capture has not yet been sealed
    /// to the buddies (its async stream is still in flight). At most the
    /// last delta of each entry's chain can be unsealed.
    unsealed: bool,
}

/// Map an arena guard violation to its trace-event kind.
pub(crate) fn arena_trip_kind(v: &GuardViolation) -> ArenaTrip {
    match v {
        GuardViolation::DoubleFree { .. } => ArenaTrip::DoubleFree,
        GuardViolation::UseAfterFree { .. } => ArenaTrip::UseAfterFree,
        GuardViolation::ForeignPointer { .. } => ArenaTrip::ForeignPointer,
    }
}

/// FNV-1a over a byte slice — the segment-audit checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Checksum `rank`'s privatized data segment, whichever per-process
/// privatizer owns it (`None` for methods without per-rank segments).
pub(crate) fn segment_checksum_in(privatizers: &[Box<dyn Privatizer>], rank: usize) -> Option<u64> {
    privatizers.iter().find_map(|p| {
        p.rank_data_segment(rank).map(|(base, len)| {
            let bytes = unsafe { std::slice::from_raw_parts(base, len) };
            fnv1a(bytes)
        })
    })
}

/// A running (or runnable) job. Built by
/// [`MachineConfig::build`](crate::config::MachineConfig::build) (or the
/// [`MachineBuilder`](crate::config::MachineBuilder) facade).
pub struct Machine {
    pub topology: Topology,
    pub(crate) clock: ClockMode,
    pub(crate) network: NetworkModel,
    pub(crate) balancer: Option<Box<dyn LoadBalancer>>,
    pub(crate) privatizers: Vec<Box<dyn Privatizer>>,
    pub(crate) location: LocationManager,
    pub(crate) ranks: RankTable,
    pub(crate) pes: Vec<PeState>,
    pub(crate) queue: EventQueue<Event>,
    pub(crate) done_count: usize,
    pub(crate) at_sync_count: usize,
    pub(crate) total_switches: u64,
    pub(crate) messages_delivered: u64,
    pub(crate) lb_steps: u32,
    pub(crate) migrations: Vec<MigrationRecord>,
    pub(crate) epoch: Instant,
    /// Per-PE HLS block (null when the method has none); installed at
    /// each context switch alongside the rank's registers.
    pub(crate) pe_hls_blocks: HlsBlocks,
    pub(crate) code_dedup_migration: bool,
    pub(crate) checkpoint_period: u32,
    /// Incremental checkpointing: periodic captures between base images
    /// take dirty-page deltas chained on the base.
    pub(crate) ckpt_incremental: bool,
    /// Delta-chain length bound; a due capture at the bound compacts
    /// into a fresh base.
    pub(crate) ckpt_max_chain: u32,
    /// Fault injection `(lb_step, byte)`: corrupt one payload byte of
    /// the delta captured at that step (failure-atomic-abort exercise).
    pub(crate) corrupt_ckpt_delta_at: Option<(u32, usize)>,
    /// Incremental-checkpoint tallies, mirrored into the [`RunReport`].
    pub(crate) ckpt_tallies: crate::stats::CkptTallies,
    pub(crate) inject_fault_at_lb_step: Option<u32>,
    /// PE-failure injection schedule `(lb_step, pe)`, drained in order;
    /// multiple entries at the same step cascade within one barrier.
    pub(crate) inject_pe_failures: Vec<(u32, PeId)>,
    /// Bytes exchanged per (from, to) rank pair since the last LB step
    /// (ordered so LB inputs are independent of merge order).
    pub(crate) comm_bytes: std::collections::BTreeMap<(RankId, RankId), u64>,
    pub(crate) lb_history: Vec<LbRecord>,
    /// Most recent coordinated checkpoint (buddy-replicated per rank).
    pub(crate) last_checkpoint: Option<Checkpoint>,
    /// Liveness per PE: the *active set*. A PE leaves it by failing
    /// (permanently) or by an elastic shrink (re-activatable by a grow).
    pub(crate) alive: Vec<bool>,
    /// PEs killed by fault injection — permanently unusable; an elastic
    /// grow only reactivates PEs that are `!failed`.
    pub(crate) failed: Vec<bool>,
    /// Rescale schedule `(lb_step, target_active_pes)` from the config,
    /// drained in order at LB barriers.
    pub(crate) rescale_at: Vec<(u32, usize)>,
    /// Automatic rescale policy, consulted at every LB barrier after the
    /// schedule.
    pub(crate) rescale_policy: Option<Box<dyn crate::rescale::RescalePolicy>>,
    /// A rescale requested via [`Machine::rescale`] before/between runs,
    /// applied at the next LB barrier.
    pub(crate) pending_rescale: Option<usize>,
    /// Restore the last checkpoint onto a different geometry at this LB
    /// step `(lb_step, target_active_pes)`.
    pub(crate) restore_geometry_at: Option<(u32, usize)>,
    /// Set whenever the active set changes mid-run so `run_virtual`
    /// recomputes its lookahead window.
    pub(crate) geometry_dirty: bool,
    /// Elastic tallies, mirrored into the [`RunReport`].
    pub(crate) elastic: crate::stats::ElasticTallies,
    /// Reliable-delivery state, present when the network carries a
    /// fault plan. Behind a mutex so concurrent lanes can share it; the
    /// per-pair keying keeps its evolution deterministic regardless.
    pub(crate) reliable: Option<Mutex<ReliableState>>,
    /// Fault/recovery tallies, mirrored into the [`RunReport`].
    pub(crate) tallies: FaultTallies,
    pub(crate) tracer: Option<Arc<Tracer>>,
    /// Memory-safety guards active (stack red zones, arena poisoning,
    /// segment audits).
    pub(crate) guards: bool,
    /// The method the configuration asked for (`method()` reports what
    /// actually landed).
    pub(crate) method_requested: Method,
    /// Probe/fallback/guard tallies, mirrored into the [`RunReport`].
    pub(crate) hardening: HardeningTallies,
    /// Nonblocking-request tallies, mirrored into the [`RunReport`].
    pub(crate) req: crate::stats::ReqTallies,
    /// Request-table size cap per rank (`MachineConfig` knob).
    pub(crate) max_outstanding_reqs: usize,
    /// Per-rank privatized-data-segment checksums (empty with guards
    /// off; `None` entries for methods without per-rank segments).
    pub(crate) segment_baseline: Vec<Option<u64>>,
    /// The rank most recently resumed — the attributed writer when a
    /// barrier-time segment audit finds bleed.
    pub(crate) last_ran: Option<RankId>,
    /// How `run` drives the PEs (serial, fixed thread count, or auto).
    pub(crate) parallelism: Parallelism,
    /// Engine activity counters for the [`RunReport`].
    pub(crate) engine: EngineTallies,
    /// Hot-path fast paths enabled (bulk epoch extraction, lane slot
    /// reuse, zero-copy corruption injection). Off = reference oracle
    /// paths; both produce bit-identical results.
    pub(crate) perf_fast: bool,
    /// Recycled per-PE lane scheduler state (event queue + outbox),
    /// indexed by PE — with `perf_fast`, steady-state epochs allocate
    /// no fresh lane structures.
    pub(crate) lane_slots: Vec<(EventQueue<Event>, Outbox)>,
    /// Recycled barrier-merge staging buffer.
    pub(crate) merge_buf: Vec<(SimTime, PeId, Event)>,
}

impl Machine {
    pub fn n_ranks(&self) -> usize {
        self.ranks.len()
    }

    pub fn n_pes(&self) -> usize {
        self.pes.len()
    }

    pub fn method(&self) -> Method {
        self.privatizers[0].method()
    }

    /// The method the configuration asked for; differs from
    /// [`Machine::method`] exactly when the fallback chain degraded.
    pub fn method_requested(&self) -> Method {
        self.method_requested
    }

    /// Probe/fallback/guard tallies accumulated so far.
    pub fn hardening_stats(&self) -> HardeningTallies {
        self.hardening
    }

    /// Test/experiment hook: scribble over the base of `rank`'s ULT
    /// stack region — where the red zone canaries live — simulating a
    /// stack overflow for the guard to catch at the next guard check.
    pub fn corrupt_rank_stack(&mut self, rank: RankId) {
        let target: Option<(*mut u8, usize)> = self.ranks[rank]
            .memory
            .regions()
            .find(|reg| reg.kind() == RegionKind::Stack)
            .map(|reg| (reg.base_mut(), reg.len()));
        if let Some((base, len)) = target {
            let n = (pvr_ult::RED_ZONE_WORDS * 8).min(len);
            unsafe { std::ptr::write_bytes(base, 0xAB, n) };
        }
    }

    /// Test/experiment hook: flip one byte inside `rank`'s privatized
    /// data segment from outside any rank's execution — simulating
    /// cross-rank global bleed for the segment audit to catch.
    pub fn corrupt_rank_segment(&mut self, rank: RankId) {
        if let Some((base, len)) = self
            .privatizers
            .iter()
            .find_map(|p| p.rank_data_segment(rank))
        {
            if len > 0 {
                unsafe {
                    let p = base as *mut u8;
                    *p = (*p).wrapping_add(1);
                }
            }
        }
    }

    /// The attached event recorder, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Nanosecond timestamp for trace events on `pe`: the virtual clock
    /// in virtual mode, wall time since the machine epoch otherwise.
    fn trace_now_ns(&self, pe: PeId) -> u64 {
        match self.clock {
            ClockMode::Virtual => self.pes[pe].clock.nanos(),
            ClockMode::RealTime => self.epoch.elapsed().as_nanos() as u64,
        }
    }

    /// Record a scheduler-side trace event. Free (one `Option` branch)
    /// when no tracer is attached.
    #[inline]
    fn trace(&self, pe: PeId, rank: u32, kind: EventKind) {
        if let Some(t) = &self.tracer {
            t.record(pe, rank, self.trace_now_ns(pe), kind);
        }
    }

    /// Install the tracer as this thread's emission target for the
    /// duration of a public entry point, so hooks in the library crates
    /// (`pvr-ampi`, `pvr-privatize`, `pvr-isomalloc`) reach it.
    fn trace_scope(&self) -> Option<pvr_trace::ThreadScope> {
        self.tracer
            .as_ref()
            .map(|t| pvr_trace::ThreadScope::install(t.clone()))
    }

    /// Simulated I/O charged during startup (FSglobals) — add to measured
    /// build time for the Fig. 5 startup comparison.
    pub fn simulated_startup_cost(&self) -> Duration {
        self.privatizers
            .iter()
            .map(|p| p.simulated_startup_cost())
            .sum()
    }

    /// Bytes of segment copies per rank (startup accounting).
    pub fn per_rank_copied_bytes(&self) -> usize {
        self.privatizers[0].per_rank_copied_bytes()
    }

    pub fn location_of(&self, rank: RankId) -> PeId {
        self.location.lookup(rank)
    }

    pub fn resident_count(&self, pe: PeId) -> usize {
        self.location.resident_count(pe)
    }

    /// Rank memory footprint (for reports/tests).
    pub fn rank_migration_bytes(&self, rank: RankId) -> usize {
        self.ranks[rank].migration_bytes()
    }

    /// Access a privatizer (e.g. for `pieglobalsfind` queries).
    pub fn privatizer(&self, process: usize) -> &dyn Privatizer {
        self.privatizers[process].as_ref()
    }

    /// A rank's privatization instance (demos/tests: resolving the
    /// rank's view of a global from outside the rank).
    pub fn rank_instance(&self, rank: RankId) -> &Arc<pvr_privatize::RankInstance> {
        &self.ranks[rank].instance
    }

    /// Resolve a user reduction operator (encoded as a code-segment
    /// offset) for application *on a specific PE* — what the runtime does
    /// when combining reduction messages. Under PIEglobals every rank has
    /// a distinct code copy, so the offset must be anchored to the base
    /// of some rank resident on `pe`; a PE hosting no ranks raises the
    /// runtime error the paper describes instead of silently forwarding.
    pub fn resolve_op_on_pe(
        &self,
        pe: PeId,
        offset: usize,
    ) -> Result<pvr_progimage::spec::Callable, RtsError> {
        if self.method() == Method::PieGlobals && self.location.resident_count(pe) == 0 {
            return Err(RtsError::EmptyPeReduction { pe });
        }
        let proc = self.topology.process_of_pe(pe);
        self.privatizers[proc]
            .callable_for_offset(offset)
            .ok_or(RtsError::Protocol {
                rank: usize::MAX,
                detail: format!("no callable at code offset {offset}"),
            })
    }

    /// Drive one rank until it blocks, parks, yields, or completes —
    /// used by benchmark harnesses that need a rank in a known state
    /// (e.g. parked in `Recv`) before migrating it.
    pub fn drive_rank(&mut self, rank: RankId) -> Result<(), RtsError> {
        let _scope = self.trace_scope();
        self.run_rank_slice(rank).map(|_| ())
    }

    /// Deliver a raw runtime message (harness use: waking a parked rank).
    pub fn inject_message(&mut self, msg: RtsMessage) {
        self.deposit(msg);
    }

    /// Explicitly migrate a suspended rank (the Fig. 8 harness; LB uses
    /// the same path).
    pub fn migrate_now(&mut self, rank: RankId, to_pe: PeId) -> Result<MigrationRecord, RtsError> {
        if to_pe >= self.pes.len() {
            return Err(RtsError::BadMigration {
                rank,
                detail: format!("destination PE {to_pe} out of range"),
            });
        }
        if !self.alive[to_pe] {
            return Err(RtsError::BadMigration {
                rank,
                detail: format!("destination PE {to_pe} has failed"),
            });
        }
        if !self.privatizers[0].supports_migration() {
            return Err(RtsError::BadMigration {
                rank,
                detail: format!(
                    "{} does not support migration (segments not allocated via Isomalloc)",
                    self.method()
                ),
            });
        }
        let from_pe = self.ranks[rank].location;
        if self.ranks[rank].status == RankStatus::Done {
            return Err(RtsError::BadMigration {
                rank,
                detail: "rank already completed".into(),
            });
        }
        // Region-copy events from pack/unpack land against this rank.
        let trace_scope = self.trace_scope();
        if trace_scope.is_some() {
            pvr_trace::set_context(from_pe, rank as u32, self.trace_now_ns(from_pe));
        }

        // Pack (real memcpy) → "transfer" → unpack (real memcpy). The
        // region ownership never leaves this address space, preserving
        // the Isomalloc same-VA invariant; the byte movement is real.
        // With code-dedup on, the bitwise-identical code segment copies
        // are skipped (re-duplicated from the destination's local image
        // in the real system).
        let dedup = self.code_dedup_migration;
        let include = move |k: pvr_isomalloc::RegionKind| {
            !(dedup && k == pvr_isomalloc::RegionKind::CodeSegment)
        };
        let t0 = Instant::now();
        // COW methods supply a read-through view of their page table, so
        // the byte-level pack below never materializes the backing store
        // (cross-rank page sharing survives the migration round-trip).
        let buf = self.pack_rank_read_through(rank, include);
        let bytes = buf.len();
        self.ranks[rank]
            .memory
            .unpack_into_with(&buf, include)
            .expect("self-roundtrip cannot fail");
        let real_time = t0.elapsed();
        let sim_cost = self
            .network
            .cost(&self.topology, from_pe, to_pe, bytes);

        // Commit location.
        self.location.update(rank, to_pe);
        self.ranks[rank].location = to_pe;
        self.ranks[rank]
            .shared
            .current_pe
            .store(to_pe, Ordering::Relaxed);
        self.ranks[rank].migrations += 1;
        if self.ranks[rank].status == RankStatus::Ready {
            self.pes[from_pe].ready.retain(|&x| x != rank);
            self.pes[to_pe].ready.push_back(rank);
            if self.clock == ClockMode::Virtual {
                let at = self.queue.now().max_of(self.pes[to_pe].clock);
                self.queue.schedule(at, Event::PeWake { pe: to_pe });
            }
        }

        let rec = MigrationRecord {
            rank,
            from_pe,
            to_pe,
            bytes,
            real_time,
            sim_cost,
        };
        self.trace(
            from_pe,
            rank as u32,
            EventKind::Migration {
                from_pe: from_pe as u32,
                to_pe: to_pe as u32,
                bytes: bytes as u64,
            },
        );
        drop(trace_scope);
        self.migrations.push(rec);
        Ok(rec)
    }

    fn respond(&mut self, rank: RankId, resp: Response) {
        self.ranks[rank].slot.lock().resp = Some(resp);
    }

    /// Put a message in its target's mailbox, waking the target — the
    /// barrier-time path (harness injection, real-time hub spill-over);
    /// lanes use their own copy of this logic during epochs.
    pub(crate) fn deposit(&mut self, msg: RtsMessage) {
        let to = msg.to;
        self.messages_delivered += 1;
        self.ranks[to].messages_received += 1;
        if self.tracer.is_some() {
            let pe = self.ranks[to].location;
            let (from, tag, bytes) = (msg.from, msg.tag, msg.wire_bytes());
            self.trace(
                pe,
                to as u32,
                EventKind::MsgRecv {
                    from: from as u32,
                    tag,
                    bytes: bytes as u32,
                },
            );
        }
        // Delivery-time matching: a posted nonblocking receive whose
        // predicate covers this message consumes it before it ever
        // reaches the mailbox (mirrors the lane-side path).
        let posted = self.ranks[to].reqs.iter().find_map(|(&id, e)| {
            match (&e.kind, &e.state) {
                (crate::rank::ReqKind::Recv(spec), crate::rank::ReqState::Pending)
                    if spec.matches(&msg) =>
                {
                    Some(id)
                }
                _ => None,
            }
        });
        if let Some(id) = posted {
            self.complete_req(to, id, Some(msg));
            return;
        }
        self.ranks[to].mailbox.push_back(msg);
        if self.ranks[to].status == RankStatus::Waiting && self.ranks[to].wait_set.is_none() {
            let m = self.ranks[to].mailbox.pop_front().expect("just deposited");
            self.respond(to, Response::Message(m));
            self.ranks[to].status = RankStatus::Ready;
            self.trace(self.ranks[to].location, to as u32, EventKind::Unblock);
            self.make_ready(to);
        }
    }

    /// Requeue `rank` on its PE, scheduling a wake event in virtual mode
    /// (barrier-time counterpart of the lane-side helper).
    fn make_ready(&mut self, rank: RankId) {
        let pe = self.ranks[rank].location;
        self.pes[pe].ready.push_back(rank);
        if self.clock == ClockMode::Virtual {
            let at = self.queue.now().max_of(self.pes[pe].clock);
            self.queue.schedule(at, Event::PeWake { pe });
        }
    }

    /// Mark request `id` on `rank` complete and run the completion
    /// protocol: completion-queue push, tallies, trace, waiter wake —
    /// the barrier-time mirror of the lane-side `complete_req`.
    fn complete_req(&mut self, rank: RankId, id: u64, msg: Option<RtsMessage>) {
        let rs = &mut self.ranks[rank];
        let e = rs.reqs.get_mut(&id).expect("completing unknown request");
        let send = e.is_send();
        e.state = crate::rank::ReqState::Done(msg);
        rs.completions.push_back(id);
        if send {
            self.req.send_completes += 1;
        } else {
            self.req.recv_completes += 1;
        }
        let pe = rs.location;
        self.trace(pe, rank as u32, EventKind::ReqComplete { req: id, send });
        self.try_wake_waiter(rank);
    }

    /// If `rank` is suspended in a wait-family call whose set is now
    /// satisfied, reap the outcomes, respond, and requeue it.
    fn try_wake_waiter(&mut self, rank: RankId) {
        let rs = &mut self.ranks[rank];
        if rs.status != RankStatus::Waiting {
            return;
        }
        if !rs.wait_set.as_ref().is_some_and(|ws| ws.satisfied(&rs.reqs)) {
            return;
        }
        let ws = rs.wait_set.take().expect("checked above");
        let outcomes = worker::reap_outcomes(rs, &ws.ids);
        if ws.cont {
            self.req.continuations += outcomes.len() as u64;
            let pe = self.ranks[rank].location;
            if self.tracer.is_some() {
                for (id, _) in &outcomes {
                    self.trace(pe, rank as u32, EventKind::ReqContinuation { req: *id });
                }
            }
        }
        self.respond(rank, Response::ReqOutcomes(outcomes));
        self.ranks[rank].status = RankStatus::Ready;
        let pe = self.ranks[rank].location;
        self.trace(pe, rank as u32, EventKind::Unblock);
        self.make_ready(rank);
    }

    /// Drive one rank until it blocks, parks, yields, or completes — a
    /// one-rank, one-lane engine invocation (harness/test entry point).
    pub(crate) fn run_rank_slice(&mut self, r: RankId) -> Result<StopReason, RtsError> {
        let pe = self.location.lookup(r);
        // Horizon ZERO: every emission crosses the barrier, exactly
        // reproducing global-queue scheduling.
        let mut lanes = vec![Lane {
            pe,
            state: std::mem::take(&mut self.pes[pe]),
            queue: EventQueue::new(),
            horizon: SimTime::ZERO,
            out: Outbox::default(),
        }];
        let res;
        {
            let shared = EngineShared {
                clock: self.clock,
                topology: &self.topology,
                network: &self.network,
                location: &self.location,
                ranks: &self.ranks,
                hls: &self.pe_hls_blocks,
                alive: &self.alive,
                tracer: self.tracer.as_ref(),
                reliable: self.reliable.as_ref(),
                epoch_start: self.epoch,
                n_ranks: self.ranks.len(),
                max_outstanding_reqs: self.max_outstanding_reqs,
                perf_fast: self.perf_fast,
            };
            let mut guard_ctx;
            let guard = if self.guards {
                guard_ctx = GuardCtx {
                    privatizers: &self.privatizers,
                    baseline: &mut self.segment_baseline,
                };
                Some(&mut guard_ctx)
            } else {
                None
            };
            let mut ctx = worker::ExecCtx {
                shared: &shared,
                lanes: &mut lanes,
                pe_base: pe,
                li: 0,
                guard,
            };
            res = ctx.run_rank_slice(r);
        }
        let merged = self.merge_lanes(lanes);
        match res {
            Err(e) => Err(e),
            Ok(stop) => {
                merged?;
                Ok(stop)
            }
        }
    }

    fn live_count(&self) -> usize {
        self.ranks.len() - self.done_count
    }

    fn lb_due(&self) -> bool {
        self.at_sync_count > 0 && self.at_sync_count == self.live_count()
    }

    /// The buddy PE that holds a second copy of `pe`'s checkpoint
    /// images: the next alive PE cyclically (or `pe` itself when it is
    /// the only survivor).
    fn buddy_of(&self, pe: PeId) -> PeId {
        let n = self.pes.len();
        (1..n)
            .map(|off| (pe + off) % n)
            .find(|&p| self.alive[p])
            .unwrap_or(pe)
    }

    /// Pack `rank`'s memory, sourcing a COW data segment through its
    /// page table instead of its backing store. The produced bytes are
    /// identical to a materialize-then-pack (shared pages read the
    /// template, which the backing region mirrors on unpack), but the
    /// segment's page sharing — and hence the dedup audit's numbers —
    /// survive the pack.
    fn pack_rank_read_through(
        &self,
        rank: RankId,
        include: impl Fn(pvr_isomalloc::RegionKind) -> bool,
    ) -> pvr_isomalloc::MigrationBuffer {
        let snap = self
            .privatizers
            .iter()
            .find_map(|p| p.cow_segment_snapshot(rank));
        match snap {
            Some((seg_base, bytes)) => {
                let mut payload = Some(bytes);
                self.ranks[rank].memory.pack_with_sources(include, |reg| {
                    if reg.base() as usize == seg_base {
                        payload.take()
                    } else {
                        None
                    }
                })
            }
            None => self.ranks[rank].memory.pack_with(include),
        }
    }

    /// Current maximum delta-chain length across the checkpoint's ranks.
    fn chain_len(ckpt: &Checkpoint) -> usize {
        ckpt.entries.iter().map(|e| e.deltas.len()).max().unwrap_or(0)
    }

    /// Seal the in-flight delta capture, if any: the asynchronous stream
    /// to each buddy PE completes, so every rank's latest delta gains its
    /// buddy copy and the chain's sealed prefix (what a buddy-side
    /// restore may use) extends to the full chain. Called at the top of
    /// every LB barrier — the consistent-cut marker.
    fn seal_pending_delta(&mut self) {
        let Some(ckpt) = self.last_checkpoint.as_mut() else {
            return;
        };
        if !ckpt.unsealed {
            return;
        }
        let mut bytes = 0u64;
        for e in ckpt.entries.iter_mut() {
            if let Some(d) = e.deltas.last_mut() {
                if d.buddy_patch.is_none() {
                    bytes += d.patch.bytes() as u64;
                    d.buddy_patch = Some(d.patch.clone());
                }
            }
        }
        ckpt.unsealed = false;
        let epoch = Self::chain_len(self.last_checkpoint.as_ref().expect("just sealed")) as u32;
        self.ckpt_tallies.seals += 1;
        self.ckpt_tallies.async_drains += 1;
        self.ckpt_tallies.async_bytes += bytes;
        self.trace(0, NO_RANK, EventKind::CkptAsyncDrain { bytes });
        self.trace(
            0,
            NO_RANK,
            EventKind::CkptSeal {
                step: self.lb_steps,
                epoch,
            },
        );
    }

    /// Take one periodic capture in incremental mode: a fresh base when
    /// no usable chain exists (first capture, a rank's layout drifted
    /// from the previous image, or the chain hit `ckpt_max_chain` —
    /// compaction), otherwise a dirty-page delta appended to the chain.
    fn take_incremental_checkpoint(&mut self) {
        let need_base = match &self.last_checkpoint {
            None => true,
            Some(c) => {
                c.entries.len() != self.ranks.len()
                    || Self::chain_len(c) as u32 >= self.ckpt_max_chain
                    // A dead holder degrades the chain to (at most) one
                    // live copy; re-establish two-copy redundancy with a
                    // fresh base, exactly as full mode does each barrier.
                    || c.entries
                        .iter()
                        .any(|e| !self.alive[e.primary_pe] || !self.alive[e.buddy_pe])
                    || c.entries.iter().enumerate().any(|(r, e)| {
                        self.ranks[r].memory.verify_layout(e.diff_target()).is_err()
                    })
            }
        };
        if need_base {
            let prior_chain = self.last_checkpoint.as_ref().map(Self::chain_len).unwrap_or(0);
            self.take_checkpoint();
            if prior_chain > 0 {
                // The fresh base replaced a delta chain: compaction.
                let bytes = self
                    .last_checkpoint
                    .as_ref()
                    .map(|c| c.entries.iter().map(|e| e.image.len() as u64).sum())
                    .unwrap_or(0);
                self.ckpt_tallies.compactions += 1;
                self.trace(
                    0,
                    NO_RANK,
                    EventKind::CkptCompact {
                        chain: prior_chain as u32,
                        bytes,
                    },
                );
            }
            return;
        }

        let mut ckpt = self.last_checkpoint.take().expect("chain checked above");
        let mut total_pages = 0u64;
        let mut total_bytes = 0u64;
        let mut dirty_ranks = 0u32;
        for (r, e) in ckpt.entries.iter_mut().enumerate() {
            let since = e
                .deltas
                .last()
                .map(|d| d.cow_since)
                .unwrap_or(e.base_cow_since);
            // COW segments hand over their epoch-stamped dirty pages
            // (read through the page table) and advance their epoch;
            // every other region is scanned against the previous image.
            let cow = self
                .privatizers
                .iter_mut()
                .find_map(|p| p.cow_delta_pages(r, since));
            let patch = self.ranks[r].memory.diff_pages_against(
                e.diff_target(),
                pvr_progimage::DEFAULT_PAGE_SIZE,
                |reg| match &cow {
                    Some(c) if reg.base() as usize == c.seg_base => {
                        pvr_isomalloc::RegionDiffPlan::Pages {
                            page_size: c.page_size,
                            pages: c.pages.clone(),
                        }
                    }
                    _ => pvr_isomalloc::RegionDiffPlan::Scan,
                },
            );
            let Some(patch) = patch else {
                // Layout drifted between the verify above and the diff
                // (cannot happen at a quiescent barrier; defensive):
                // discard the partial delta pass and take a fresh base.
                self.last_checkpoint = Some(ckpt);
                self.take_checkpoint();
                return;
            };
            let cow_since = cow.map(|c| c.next_since).unwrap_or(0);
            let mut accum = e.accum.take().unwrap_or_else(|| e.image.clone());
            patch.apply_to(&mut accum);
            e.accum = Some(accum);
            if !patch.is_empty() {
                dirty_ranks += 1;
            }
            total_pages += patch.range_count() as u64;
            total_bytes += patch.bytes() as u64;
            let checksum = patch.checksum();
            let sp = self.ranks[r].ult.as_ref().and_then(|u| u.suspended_sp());
            e.deltas.push(RankDelta {
                patch,
                buddy_patch: None,
                checksum,
                sp,
                req: crate::rank::ReqSnapshot::capture(&self.ranks[r]),
                cow_since,
            });
        }
        ckpt.unsealed = true;
        let chain = Self::chain_len(&ckpt) as u32;
        self.last_checkpoint = Some(ckpt);
        self.ckpt_tallies.deltas += 1;
        self.ckpt_tallies.pages_delta += total_pages;
        self.ckpt_tallies.delta_bytes += total_bytes;
        self.ckpt_tallies.max_in_flight_bytes =
            self.ckpt_tallies.max_in_flight_bytes.max(total_bytes);
        self.ckpt_tallies.max_chain_len = self.ckpt_tallies.max_chain_len.max(chain);
        self.trace(
            0,
            NO_RANK,
            EventKind::CkptDelta {
                step: self.lb_steps,
                ranks: dirty_ranks,
                pages: total_pages,
                bytes: total_bytes,
            },
        );
    }

    /// Take a coordinated checkpoint: pack every live rank's memory
    /// (valid at an LB barrier, where all live ranks are parked at
    /// `AtSync` with drained mailboxes). Each image is replicated to the
    /// home PE's buddy so one PE failure cannot lose it.
    fn take_checkpoint(&mut self) {
        let mut entries: Vec<CheckpointEntry> = Vec::with_capacity(self.ranks.len());
        for r in 0..self.ranks.len() {
            // COW methods supply a read-through view of their page table
            // (template bytes for shared pages, backing bytes for private
            // ones), so packing never materializes the backing store and
            // cross-rank page sharing survives every checkpoint.
            let image = self.pack_rank_read_through(r, |_| true);
            let sp = self.ranks[r].ult.as_ref().and_then(|u| u.suspended_sp());
            let checksum = image.checksum();
            let primary_pe = self.ranks[r].location;
            // Epoch floor for the first delta on top of this base: pages
            // dirtied from here on belong to the next capture.
            let base_cow_since = if self.ckpt_incremental {
                self.privatizers
                    .iter_mut()
                    .map(|p| p.cow_advance_epoch(r))
                    .find(|&e| e > 0)
                    .unwrap_or(0)
            } else {
                0
            };
            entries.push(CheckpointEntry {
                buddy_image: image.clone(),
                image,
                sp,
                req: crate::rank::ReqSnapshot::capture(&self.ranks[r]),
                checksum,
                primary_pe,
                buddy_pe: self.buddy_of(primary_pe),
                deltas: Vec::new(),
                accum: None,
                base_cow_since,
            });
        }
        let bytes: u64 = entries.iter().map(|e| e.image.len() as u64).sum();
        // Degenerate-redundancy audit: with a single alive PE the buddy
        // *is* the primary, so those images exist only once — warn
        // loudly instead of silently halving the fault tolerance.
        let degenerate: Vec<&CheckpointEntry> = entries
            .iter()
            .filter(|e| e.buddy_pe == e.primary_pe)
            .collect();
        if let Some(first) = degenerate.first() {
            let pe = first.primary_pe as u32;
            let ranks = degenerate.len() as u32;
            self.tallies.degenerate_buddies += ranks;
            self.trace(0, NO_RANK, EventKind::BuddyDegenerate { pe, ranks });
        }
        self.last_checkpoint = Some(Checkpoint {
            entries,
            unsealed: false,
        });
        self.tallies.checkpoints += 1;
        self.trace(
            0,
            NO_RANK,
            EventKind::CheckpointTaken {
                step: self.lb_steps,
                bytes,
            },
        );
    }

    /// Restore every rank's memory from the last checkpoint. Ranks
    /// resume from the sync point at which the checkpoint was taken and
    /// recompute forward — classic coordinated rollback.
    ///
    /// With a delta chain, the restored state is the *consistent cut*:
    /// the longest chain prefix available on a live holder for every
    /// rank. A rank whose primary PE is alive offers its whole chain; a
    /// rank falling back to its buddy offers only the sealed prefix (the
    /// async stream never delivered the unsealed tail). The minimum over
    /// all ranks is applied everywhere, so the job resumes from one
    /// coordinated barrier — possibly an earlier one than the latest
    /// delta capture.
    ///
    /// Failure-atomic: every base image and every chained delta up to
    /// the cut is selected (from a live holder), checksummed,
    /// layout/bounds-verified before any rank is mutated, so a restore
    /// that cannot succeed leaves all rank memory untouched and the
    /// checkpoint still in place.
    fn restore_checkpoint(&mut self) -> Result<(), RtsError> {
        let Some(mut ckpt) = self.last_checkpoint.take() else {
            return Err(RtsError::Protocol {
                rank: usize::MAX,
                detail: "fault injected with no checkpoint available".into(),
            });
        };

        // Phase 1: verify everything, mutating nothing.
        let verify = || -> Result<(usize, Vec<bool>), RtsError> {
            // 1a: pick a live holder per rank and find the consistent
            // cut — the longest chain prefix every holder can supply.
            let mut cut = usize::MAX;
            let mut use_buddy = Vec::with_capacity(ckpt.entries.len());
            for (rank, e) in ckpt.entries.iter().enumerate() {
                let from_buddy = if self.alive[e.primary_pe] {
                    false
                } else if self.alive[e.buddy_pe] {
                    true
                } else {
                    return Err(RtsError::CheckpointLost {
                        rank,
                        primary_pe: e.primary_pe,
                        buddy_pe: e.buddy_pe,
                    });
                };
                let avail = if from_buddy {
                    e.deltas
                        .iter()
                        .take_while(|d| d.buddy_patch.is_some())
                        .count()
                } else {
                    e.deltas.len()
                };
                cut = cut.min(avail);
                use_buddy.push(from_buddy);
            }
            let cut = if ckpt.entries.is_empty() { 0 } else { cut };
            // 1b: verify base checksums, layouts, and every delta up to
            // the cut (checksum + patch bounds) for the chosen holders.
            for (rank, (e, &from_buddy)) in ckpt.entries.iter().zip(&use_buddy).enumerate() {
                let img = if from_buddy { &e.buddy_image } else { &e.image };
                if img.checksum() != e.checksum {
                    return Err(RtsError::Protocol {
                        rank,
                        detail: "checkpoint image checksum mismatch".into(),
                    });
                }
                self.ranks[rank]
                    .memory
                    .verify_layout(img)
                    .map_err(|e| RtsError::Protocol {
                        rank,
                        detail: format!("checkpoint restore failed: {e}"),
                    })?;
                for d in &e.deltas[..cut] {
                    let patch = if from_buddy {
                        d.buddy_patch.as_ref().expect("cut within sealed prefix")
                    } else {
                        &d.patch
                    };
                    if patch.checksum() != d.checksum {
                        return Err(RtsError::Protocol {
                            rank,
                            detail: "checkpoint delta checksum mismatch".into(),
                        });
                    }
                    if !patch.verify_bounds(img.len()) {
                        return Err(RtsError::Protocol {
                            rank,
                            detail: "checkpoint delta patch out of bounds".into(),
                        });
                    }
                }
            }
            Ok((cut, use_buddy))
        };
        let (cut, use_buddy) = match verify() {
            Ok(v) => v,
            Err(e) => {
                // nothing was touched; keep the checkpoint for later
                self.last_checkpoint = Some(ckpt);
                return Err(e);
            }
        };

        // Phase 2: restore is two-phase per rank — reconstruct
        // base + deltas up to the cut and unpack the bytes, then the
        // suspension point (stack pointer) those bytes belong to. The
        // chain is truncated to the cut: deltas past it (an unsealed
        // tail whose primary died) are gone for every rank alike.
        for (rank, e) in ckpt.entries.iter_mut().enumerate() {
            let from_buddy = use_buddy[rank];
            let base = if from_buddy { &e.buddy_image } else { &e.image };
            let mut img = base.clone();
            let mut sp = e.sp;
            let mut req = &e.req;
            for d in &e.deltas[..cut] {
                let patch = if from_buddy {
                    d.buddy_patch.as_ref().expect("verified above")
                } else {
                    &d.patch
                };
                patch.apply_to(&mut img);
                if d.sp.is_some() {
                    sp = d.sp;
                }
                req = &d.req;
            }
            self.ranks[rank]
                .memory
                .unpack_into(&img)
                .expect("layout verified before unpack");
            // The request table rolls back with the memory it belongs
            // to — the cut's barrier state.
            req.apply(&mut self.ranks[rank]);
            e.deltas.truncate(cut);
            e.accum = if cut == 0 { None } else { Some(img) };
            if let Some(sp) = sp {
                // SAFETY: the stack bytes were just restored to exactly
                // the state observed together with this sp.
                unsafe {
                    self.ranks[rank]
                        .ult
                        .as_mut()
                        .expect("rank ULT present")
                        .restore_suspended_sp(sp);
                }
            }
        }
        ckpt.unsealed = ckpt
            .entries
            .iter()
            .any(|e| e.deltas.last().is_some_and(|d| d.buddy_patch.is_none()));
        let ranks = ckpt.entries.len() as u32;
        self.last_checkpoint = Some(ckpt);
        self.ckpt_tallies.chain_len = self
            .last_checkpoint
            .as_ref()
            .map(|c| Self::chain_len(c) as u32)
            .unwrap_or(0);
        self.tallies.recoveries += 1;
        self.trace(0, NO_RANK, EventKind::Recovery { ranks });
        Ok(())
    }

    /// Checkpoint/restart totals: (checkpoints taken, recoveries done).
    pub fn fault_tolerance_stats(&self) -> (u32, u32) {
        (self.tallies.checkpoints, self.tallies.recoveries)
    }

    /// Kill PE `pe`: its resident ranks lose their memory, the machine
    /// rolls every rank back to the last coordinated checkpoint, and the
    /// dead PE's ranks are adopted by the surviving PEs (buddy images
    /// make the rollback possible even though the primary copy died with
    /// the PE).
    fn fail_pe(&mut self, pe: PeId) -> Result<(), RtsError> {
        if !self.alive[pe] {
            return Ok(());
        }
        if self.alive.iter().filter(|a| **a).count() < 2 {
            return Err(RtsError::Protocol {
                rank: usize::MAX,
                detail: format!("cannot fail PE {pe}: it is the last alive PE"),
            });
        }
        if self.done_count > 0 {
            return Err(RtsError::Protocol {
                rank: usize::MAX,
                detail: "PE failure after rank completion is unsupported \
                         (completed ranks cannot roll back)"
                    .into(),
            });
        }
        if self.last_checkpoint.is_none() {
            return Err(RtsError::Protocol {
                rank: usize::MAX,
                detail: "fault injected with no checkpoint available".into(),
            });
        }
        let lost: Vec<RankId> = self.location.residents(pe).collect();
        self.tallies.pe_failures += 1;
        self.trace(
            pe,
            NO_RANK,
            EventKind::PeFail {
                pe: pe as u32,
                ranks_lost: lost.len() as u32,
            },
        );
        self.alive[pe] = false;
        self.failed[pe] = true;
        self.geometry_dirty = true;
        self.pes[pe].ready.clear();
        // The dead PE's rank images are gone: scribble them so any read
        // of un-restored state is loud.
        for &r in &lost {
            let regions: Vec<(*mut u8, usize)> = self.ranks[r]
                .memory
                .regions()
                .map(|reg| (reg.base_mut(), reg.len()))
                .collect();
            for (ptr, len) in regions {
                unsafe { std::ptr::write_bytes(ptr, 0xDE, len) };
            }
        }
        // Coordinated rollback of every rank (survivors included).
        if let Err(e) = self.restore_checkpoint() {
            // The scribbled stacks can never be unwound safely; abandon
            // those ULTs so Machine teardown doesn't resume onto them.
            self.abandon_ranks(&lost);
            return Err(e);
        }
        self.reseed_guards_after_restore();
        // Survivors adopt the dead PE's ranks (least-loaded first).
        for r in lost {
            let target = self.least_loaded_alive_pe();
            let rec = self.migrate_now(r, target)?;
            if self.clock == ClockMode::Virtual {
                self.pes[target].work(rec.sim_cost);
            }
        }
        Ok(())
    }

    /// The alive PE with the smallest resident load (sum of its ranks'
    /// load since the last LB step), ties broken by PE id.
    fn least_loaded_alive_pe(&self) -> PeId {
        (0..self.pes.len())
            .filter(|&p| self.alive[p])
            .min_by(|&a, &b| {
                let load = |pe: PeId| -> SimDuration {
                    self.location
                        .residents(pe)
                        .map(|r| self.ranks[r].load_since_lb)
                        .fold(SimDuration::ZERO, |acc, d| acc + d)
                };
                load(a).cmp(&load(b)).then(a.cmp(&b))
            })
            .expect("at least one alive PE")
    }

    /// First alive PE at or cyclically after `p` (placement repair after
    /// a PE death).
    fn first_alive_from(&self, p: PeId) -> PeId {
        let n = self.pes.len();
        (0..n)
            .map(|off| (p + off) % n)
            .find(|&q| self.alive[q])
            .expect("at least one alive PE")
    }

    /// PEs currently in the active set.
    pub fn active_pes(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Request an elastic rescale of the active set to `n` PEs, applied
    /// at the next LB barrier (clamped to `1..=usable` where usable
    /// excludes permanently-failed PEs). The build-time PE count is the
    /// capacity: `n` beyond it is clamped down.
    pub fn rescale(&mut self, n: usize) {
        self.pending_rescale = Some(n);
    }

    /// Elastic tallies accumulated so far.
    pub fn elastic_stats(&self) -> crate::stats::ElasticTallies {
        self.elastic
    }

    /// The canonical active set for `target` PEs: the lowest-indexed
    /// `target` non-failed PEs. Canonicalizing makes a rescale's outcome
    /// a pure function of (failed set, target), independent of the
    /// rescale history — the determinism bar's foundation.
    fn canonical_active(&self, target: usize) -> Vec<PeId> {
        let usable: Vec<PeId> = (0..self.pes.len()).filter(|&p| !self.failed[p]).collect();
        let target = target.clamp(1, usable.len());
        usable[..target].to_vec()
    }

    /// What a [`crate::rescale::RescalePolicy`] sees at this barrier:
    /// per-active-PE window loads (resident ranks' load since the last
    /// LB step), in active-PE order.
    fn rescale_stats(&self) -> crate::rescale::RescaleStats {
        let active: Vec<PeId> = (0..self.pes.len()).filter(|&p| self.alive[p]).collect();
        let pe_loads = active
            .iter()
            .map(|&p| {
                self.location
                    .residents(p)
                    .map(|r| self.ranks[r].load_since_lb.as_secs_f64())
                    .sum()
            })
            .collect();
        crate::rescale::RescaleStats {
            active_pes: active.len(),
            capacity: self.pes.len(),
            usable_pes: self.failed.iter().filter(|f| !**f).count(),
            pe_loads,
            step: self.lb_steps,
        }
    }

    /// Commit an elastic rescale at an LB barrier (every live rank is
    /// parked at `AtSync`, ready queues are empty). Grown PEs rejoin the
    /// active set (their lanes and event-queue slices already exist at
    /// capacity; the barrier's clock advance below brings their stale
    /// clocks up). Shrunk PEs are drained by migrating their residents
    /// to the least-loaded surviving PEs. Afterwards the buddy
    /// checkpoints are re-replicated onto the new geometry so no rank
    /// has fewer than two live copies.
    fn do_rescale(&mut self, target: usize) -> Result<(), RtsError> {
        let new_active = self.canonical_active(target);
        let old_count = self.active_pes();
        let is_active = |p: PeId| new_active.contains(&p);
        let activated: Vec<PeId> = (0..self.pes.len())
            .filter(|&p| is_active(p) && !self.alive[p])
            .collect();
        let deactivated: Vec<PeId> = (0..self.pes.len())
            .filter(|&p| !is_active(p) && self.alive[p])
            .collect();
        if activated.is_empty() && deactivated.is_empty() {
            return Ok(());
        }
        for &p in &activated {
            self.alive[p] = true;
        }
        for &d in &deactivated {
            self.alive[d] = false;
            debug_assert!(self.pes[d].ready.is_empty(), "barrier ready queue not empty");
        }
        // Drain the shrunk PEs: at the barrier their residents are all
        // AtSync (or Done, which never runs again and needs no move).
        let mut drained = 0u32;
        for &d in &deactivated {
            let residents: Vec<RankId> = self.location.residents(d).collect();
            for r in residents {
                if self.ranks[r].status == RankStatus::Done {
                    continue;
                }
                let to = self.least_loaded_alive_pe();
                let rec = self.migrate_now(r, to)?;
                if self.clock == ClockMode::Virtual {
                    // both endpoints pay the transfer, as in LB moves
                    self.pes[d].work(rec.sim_cost);
                    self.pes[to].work(rec.sim_cost);
                }
                drained += 1;
            }
        }
        self.geometry_dirty = true;
        self.elastic.rescales += 1;
        self.elastic.pes_activated += activated.len() as u32;
        self.elastic.pes_deactivated += deactivated.len() as u32;
        self.elastic.ranks_drained += drained;
        self.trace(
            0,
            NO_RANK,
            EventKind::Rescale {
                from_pes: old_count as u32,
                to_pes: new_active.len() as u32,
                moved_ranks: drained,
            },
        );
        self.re_replicate();
        Ok(())
    }

    /// Re-replicate the checkpoint images onto the current geometry.
    ///
    /// Full mode: a fresh coordinated checkpoint whose primary/buddy
    /// assignment is computed over the new active set. Incremental mode
    /// with a live chain: the chain itself is re-homed — any in-flight
    /// delta is sealed first, then every entry's primary/buddy move to
    /// the rank's current PE and its buddy, and the re-replication
    /// traffic is the base plus the sealed chain (not a flattened copy,
    /// and not a fresh capture — no `CheckpointTaken` is emitted). Gated
    /// like the periodic checkpoint (completed ranks cannot be
    /// re-captured).
    fn re_replicate(&mut self) {
        if self.checkpoint_period == 0 || self.done_count > 0 {
            return;
        }
        if self.ckpt_incremental && self.last_checkpoint.is_some() {
            // Chain re-homing: complete the async stream, then move the
            // copies (the byte movement is the re-replication traffic).
            self.seal_pending_delta();
            let mut ckpt = self.last_checkpoint.take().expect("checked above");
            let mut bytes = 0u64;
            for (r, e) in ckpt.entries.iter_mut().enumerate() {
                let primary = self.ranks[r].location;
                e.primary_pe = primary;
                e.buddy_pe = self.buddy_of(primary);
                bytes += e.image.len() as u64;
                bytes += e
                    .deltas
                    .iter()
                    .filter(|d| d.buddy_patch.is_some())
                    .map(|d| d.patch.bytes() as u64)
                    .sum::<u64>();
            }
            let ranks = ckpt.entries.len() as u32;
            let degenerate = ckpt
                .entries
                .iter()
                .filter(|e| e.buddy_pe == e.primary_pe)
                .count() as u32;
            let degenerate_pe = ckpt
                .entries
                .iter()
                .find(|e| e.buddy_pe == e.primary_pe)
                .map(|e| e.primary_pe as u32);
            self.last_checkpoint = Some(ckpt);
            if let Some(pe) = degenerate_pe {
                self.tallies.degenerate_buddies += degenerate;
                self.trace(
                    0,
                    NO_RANK,
                    EventKind::BuddyDegenerate {
                        pe,
                        ranks: degenerate,
                    },
                );
            }
            self.elastic.re_replications += 1;
            self.trace(0, NO_RANK, EventKind::ReReplicate { ranks, bytes });
            return;
        }
        self.take_checkpoint();
        let (ranks, bytes) = self
            .last_checkpoint
            .as_ref()
            .map(|c| {
                (
                    c.entries.len() as u32,
                    c.entries.iter().map(|e| e.image.len() as u64).sum(),
                )
            })
            .unwrap_or((0, 0));
        self.elastic.re_replications += 1;
        self.trace(0, NO_RANK, EventKind::ReReplicate { ranks, bytes });
    }

    /// Restore the last checkpoint onto a different geometry: coordinated
    /// rollback (holders selected on the *current* active set — the
    /// checkpoint predates the geometry change), then switch the active
    /// set to the canonical `target` PEs and re-place every live rank in
    /// block order across them, exactly as a restart at that geometry
    /// would. Placement is a directory update, not a migration: the rank
    /// images were just restored, so there is no memory to move and no
    /// transfer to charge. Finishes by re-replicating the checkpoint on
    /// the new geometry.
    fn do_geometry_restore(&mut self, target: usize) -> Result<(), RtsError> {
        if self.done_count > 0 {
            return Err(RtsError::Protocol {
                rank: usize::MAX,
                detail: "geometry restore after rank completion is unsupported \
                         (completed ranks cannot roll back)"
                    .into(),
            });
        }
        self.restore_checkpoint()?;
        self.reseed_guards_after_restore();
        let new_active = self.canonical_active(target);
        let old_count = self.active_pes();
        for p in 0..self.pes.len() {
            self.alive[p] = new_active.contains(&p);
        }
        match new_active.len().cmp(&old_count) {
            std::cmp::Ordering::Greater => {
                self.elastic.pes_activated += (new_active.len() - old_count) as u32
            }
            std::cmp::Ordering::Less => {
                self.elastic.pes_deactivated += (old_count - new_active.len()) as u32
            }
            std::cmp::Ordering::Equal => {}
        }
        // Restart-style block placement over the new active list — the
        // same mapping `LocationManager::new_block` would produce for a
        // fresh machine with this many PEs.
        let n_ranks = self.ranks.len();
        let ratio = n_ranks.div_ceil(new_active.len());
        for r in 0..n_ranks {
            let pe = new_active[(r / ratio).min(new_active.len() - 1)];
            self.location.update(r, pe);
            self.ranks[r].location = pe;
        }
        self.geometry_dirty = true;
        self.elastic.geometry_restores += 1;
        self.trace(
            0,
            NO_RANK,
            EventKind::GeometryRestore {
                ranks: n_ranks as u32,
                to_pes: new_active.len() as u32,
            },
        );
        self.re_replicate();
        Ok(())
    }

    /// Write off ranks whose memory was scribbled by an injected fault and
    /// could not be restored: their suspended stacks must never be resumed
    /// (not even for cancellation-unwind at drop), so the ULTs leak.
    fn abandon_ranks(&mut self, ranks: &[RankId]) {
        for &r in ranks {
            if let Some(ult) = self.ranks[r].ult.as_mut() {
                ult.abandon();
            }
        }
    }

    /// Barrier-time guard audits, run while every live rank is quiescent:
    /// sweep each rank's arena quarantine for writes through stale
    /// pointers, then checksum every privatized data segment and emit the
    /// summary `SegmentAudit` event.
    fn audit_guards_at_barrier(&mut self) -> Result<(), RtsError> {
        for r in 0..self.ranks.len() {
            if let Err(v) = self.ranks[r].memory.heap_ref().audit_quarantine() {
                let pe = self.ranks[r].location;
                self.trace(
                    pe,
                    r as u32,
                    EventKind::ArenaGuardTrip {
                        kind: arena_trip_kind(&v),
                    },
                );
                self.hardening.arena_guard_trips += 1;
                return Err(RtsError::ArenaGuard {
                    rank: r,
                    detail: v.to_string(),
                });
            }
        }
        if !self.segment_baseline.is_empty() {
            let mut audited = 0u32;
            let mut dirty = 0u32;
            let mut victim: Option<RankId> = None;
            for q in 0..self.ranks.len() {
                let Some(sum) = segment_checksum_in(&self.privatizers, q) else {
                    continue;
                };
                audited += 1;
                if self.segment_baseline[q] != Some(sum) {
                    self.segment_baseline[q] = Some(sum);
                    dirty += 1;
                    victim.get_or_insert(q);
                }
            }
            self.trace(
                0,
                NO_RANK,
                EventKind::SegmentAudit {
                    ranks: audited,
                    dirty,
                },
            );
            self.hardening.segment_audits += 1;
            if let Some(q) = victim {
                // The per-slice check clears after every resume, so bleed
                // surfacing only at the barrier was written outside any
                // rank's slice; the best attribution is the last resumed
                // rank.
                return Err(RtsError::SegmentBleed {
                    rank: q,
                    writer: self.last_ran.unwrap_or(RankId::MAX),
                });
            }
        }
        Ok(())
    }

    /// Recovery rewrites rank memory wholesale: reseed the segment
    /// baselines and reset each arena's quarantine so stale poison
    /// expectations don't fire as false guard trips on restored bytes.
    fn reseed_guards_after_restore(&mut self) {
        if !self.guards {
            return;
        }
        for r in 0..self.ranks.len() {
            let heap = self.ranks[r].memory.heap();
            if heap.guard_enabled() {
                heap.set_guard(false);
                heap.set_guard(true);
            }
        }
        if !self.segment_baseline.is_empty() {
            self.segment_baseline = (0..self.ranks.len())
                .map(|q| segment_checksum_in(&self.privatizers, q))
                .collect();
        }
    }

    /// Run one LB step: measure, rebalance, migrate, release.
    fn do_lb_step(&mut self) -> Result<(), RtsError> {
        self.lb_steps += 1;
        let migrations_before = self.migrations.len();

        // The previous barrier's delta capture finished streaming to the
        // buddies somewhere between the barriers; reaching this barrier
        // seals it — the consistent-cut marker.
        if self.ckpt_incremental {
            self.seal_pending_delta();
        }

        // Guard audits run first, on quiescent pre-checkpoint state, so a
        // checkpoint can never capture (and later faithfully restore)
        // corruption the guards would have caught.
        if self.guards {
            self.audit_guards_at_barrier()?;
        }

        // Coordinated checkpointing and fault injection happen at the
        // barrier, where every live rank is quiescent.
        if self.checkpoint_period > 0
            && self.done_count == 0
            && self.lb_steps % self.checkpoint_period == 1 % self.checkpoint_period.max(1)
        {
            // The capture *is* the application pause (the async buddy
            // stream is not): wall-clock it in both modes.
            let t0 = Instant::now();
            if self.ckpt_incremental {
                self.take_incremental_checkpoint();
            } else {
                self.take_checkpoint();
            }
            self.ckpt_tallies.pause_ns += t0.elapsed().as_nanos() as u64;
        }
        // Fault injection: flip one payload byte of this step's delta
        // capture (its checksum was recorded pre-flip, so a restore from
        // this chain must detect the mismatch and abort atomically).
        if let Some((step, at)) = self.corrupt_ckpt_delta_at {
            if step == self.lb_steps {
                self.corrupt_ckpt_delta_at = None;
                if let Some(ckpt) = self.last_checkpoint.as_mut() {
                    for e in ckpt.entries.iter_mut() {
                        let corrupted = e
                            .deltas
                            .last_mut()
                            .is_some_and(|d| d.patch.corrupt_byte(at));
                        if corrupted {
                            break;
                        }
                    }
                }
            }
        }
        if self.inject_fault_at_lb_step == Some(self.lb_steps) {
            // refuse before destroying anything if recovery is impossible
            if self.last_checkpoint.is_none() {
                return Err(RtsError::Protocol {
                    rank: usize::MAX,
                    detail: "fault injected with no checkpoint available".into(),
                });
            }
            // soft fault: scribble over every rank's memory...
            for r in 0..self.ranks.len() {
                let regions: Vec<(*mut u8, usize)> = self.ranks[r]
                    .memory
                    .regions()
                    .map(|reg| (reg.base_mut(), reg.len()))
                    .collect();
                for (ptr, len) in regions {
                    unsafe { std::ptr::write_bytes(ptr, 0xDE, len) };
                }
            }
            // ...and recover from the checkpoint before anything runs.
            if let Err(e) = self.restore_checkpoint() {
                // Every stack is scribbled; abandon all ULTs so teardown
                // doesn't unwind onto garbage frames.
                let all: Vec<RankId> = (0..self.ranks.len()).collect();
                self.abandon_ranks(&all);
                return Err(e);
            }
            self.reseed_guards_after_restore();
            self.inject_fault_at_lb_step = None;
        }
        // Drain this step's PE-failure schedule in order; entries at the
        // same step cascade within one barrier (each runs its own
        // rollback, so the second failure exercises the buddy copies the
        // first one left behind).
        let mut failed_this_step = false;
        while let Some(idx) = self
            .inject_pe_failures
            .iter()
            .position(|&(step, _)| step == self.lb_steps)
        {
            let (_, pe) = self.inject_pe_failures.remove(idx);
            self.fail_pe(pe)?;
            failed_this_step = true;
        }

        // Restart-on-different-geometry injection: roll back to the last
        // checkpoint, then re-place every rank onto the target active
        // set as a restart would (no migration traffic — the images were
        // just restored, placement is free).
        if let Some((step, target)) = self.restore_geometry_at {
            if step == self.lb_steps {
                self.restore_geometry_at = None;
                self.do_geometry_restore(target)?;
            }
        }

        // Elastic rescale decision: an explicit `Machine::rescale`
        // request wins, then the config schedule, then the policy.
        // Failure-atomicity: if a PE failure struck this same barrier,
        // the planned rescale is abandoned and the pre-failure recovery
        // path keeps the (shrunken) pre-rescale geometry.
        let requested = if let Some(n) = self.pending_rescale.take() {
            Some(n)
        } else {
            let mut scheduled = None;
            while let Some(idx) = self
                .rescale_at
                .iter()
                .position(|&(step, _)| step == self.lb_steps)
            {
                scheduled = Some(self.rescale_at.remove(idx).1);
            }
            if scheduled.is_some() {
                scheduled
            } else if let Some(policy) = &self.rescale_policy {
                policy.decide(&self.rescale_stats())
            } else {
                None
            }
        };
        if let Some(target) = requested {
            if failed_this_step {
                self.elastic.rescales_aborted += 1;
                self.trace(
                    0,
                    NO_RANK,
                    EventKind::RescaleAborted {
                        from_pes: self.active_pes() as u32,
                        to_pes: target as u32,
                    },
                );
            } else {
                self.do_rescale(target)?;
            }
        }

        // Virtual mode: the sync point is a barrier — all alive PEs meet
        // at the max alive clock.
        if self.clock == ClockMode::Virtual {
            let max_clock = self
                .pes
                .iter()
                .zip(&self.alive)
                .filter(|(_, alive)| **alive)
                .map(|(p, _)| p.clock)
                .max()
                .unwrap_or(SimTime::ZERO);
            for (pe, alive) in self.pes.iter_mut().zip(&self.alive) {
                if *alive {
                    pe.advance_to(max_clock);
                }
            }
        }

        if let Some(balancer) = self.balancer.take() {
            // Balancers see the *active* geometry: dead and deactivated
            // PEs are compacted out, so `n_pes` is the live count and
            // placements are dense indices into the active list. With
            // every PE alive this is the identity mapping; after a
            // failure or rescale it keeps strategies spreading load over
            // exactly the PEs that can run ranks.
            let active: Vec<PeId> = (0..self.pes.len()).filter(|&p| self.alive[p]).collect();
            let mut dense = vec![0usize; self.pes.len()];
            for (i, &p) in active.iter().enumerate() {
                dense[p] = i;
            }
            let stats = LbStats {
                loads: self
                    .ranks
                    .iter()
                    .map(|r| r.load_since_lb.as_secs_f64())
                    .collect(),
                placement: self
                    .location
                    .placements()
                    .iter()
                    .map(|&p| dense[p])
                    .collect(),
                n_pes: active.len(),
                migration_bytes: self.ranks.iter().map(|r| r.migration_bytes()).collect(),
                comm_bytes: self
                    .comm_bytes
                    .iter()
                    .map(|(&(a, b), &v)| (a, b, v))
                    .collect(),
            };
            let mut new_placement = balancer.rebalance(&stats);
            self.balancer = Some(balancer);
            assert_eq!(new_placement.len(), self.ranks.len());

            // LB database entry (in the dense active-PE view, matching
            // what the strategy was shown)
            self.lb_history.push(LbRecord {
                step: self.lb_steps,
                at: self.pes.iter().map(|p| p.clock).max().unwrap_or(SimTime::ZERO),
                pe_loads_before: stats.pe_loads(&stats.placement),
                pe_loads_after: stats.pe_loads(&new_placement),
                migrations: stats.migration_count(&new_placement),
                comm_bytes: stats.comm_bytes.iter().map(|&(_, _, b)| b).sum(),
            });

            // Map dense indices back to real PEs. A buggy strategy may
            // return an out-of-range slot; repair it to an alive PE
            // instead of panicking — LB output is advisory.
            for p in new_placement.iter_mut() {
                *p = match active.get(*p) {
                    Some(&pe) => pe,
                    None => self.first_alive_from((*p).min(self.pes.len() - 1)),
                };
            }

            for (r, &new_pe) in new_placement.iter().enumerate() {
                if self.ranks[r].status == RankStatus::Done {
                    continue;
                }
                if new_pe != self.ranks[r].location {
                    let rec = self.migrate_now(r, new_pe)?;
                    if self.clock == ClockMode::Virtual {
                        // both endpoints pay the transfer
                        let from = rec.from_pe;
                        let to = rec.to_pe;
                        self.pes[from].work(rec.sim_cost);
                        self.pes[to].work(rec.sim_cost);
                    }
                }
            }
        }

        // reset loads, the comm graph, and release everyone
        self.comm_bytes.clear();
        for r in 0..self.ranks.len() {
            self.ranks[r].load_since_lb = SimDuration::ZERO;
            if self.ranks[r].status == RankStatus::AtSync {
                self.ranks[r].status = RankStatus::Ready;
                let pe = self.ranks[r].location;
                self.pes[pe].ready.push_back(r);
                if self.clock == ClockMode::Virtual {
                    let at = self.queue.now().max_of(self.pes[pe].clock);
                    self.queue.schedule(at, Event::PeWake { pe });
                }
            }
        }
        self.at_sync_count = 0;
        self.trace(
            0,
            NO_RANK,
            EventKind::LbStep {
                step: self.lb_steps,
                migrations: (self.migrations.len() - migrations_before) as u32,
            },
        );
        Ok(())
    }

    /// Worker threads `run` will actually use: the configured
    /// [`Parallelism`] (with `Auto` reading `PVR_THREADS`), clamped to
    /// the PE count, and forced to 1 when guards or an unprivatized
    /// method require the single-threaded engine.
    pub(crate) fn effective_threads(&self) -> usize {
        let requested = match self.parallelism {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::env::var("PVR_THREADS")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(1),
        };
        let capped = requested.min(self.pes.len().max(1));
        if self.guards || self.method() == Method::Unprivatized {
            1
        } else {
            capped
        }
    }

    /// Conservative lookahead for epoch formation: the minimum cost any
    /// cross-PE event can incur. Events popped within one window can
    /// only schedule onto *other* lanes at or beyond the horizon, which
    /// is what makes concurrent lane execution safe.
    /// Only *active* PE pairs count: dead and deactivated PEs source no
    /// events, so links touching them cannot constrain the window. The
    /// machine recomputes this whenever the active set changes
    /// (`geometry_dirty`) — epoch partitioning does not affect merged
    /// results, so a mid-run window change preserves bit-identity.
    fn lookahead(&self) -> Lookahead {
        let active: Vec<PeId> = (0..self.pes.len()).filter(|&p| self.alive[p]).collect();
        if active.len() <= 1 {
            return Lookahead::Unbounded;
        }
        let mut min_cost: Option<SimDuration> = None;
        for &a in &active {
            for &b in &active {
                if a == b {
                    continue;
                }
                let c = self.network.cost(&self.topology, a, b, 0);
                min_cost = Some(match min_cost {
                    Some(m) if m <= c => m,
                    _ => c,
                });
            }
        }
        match min_cost {
            None => Lookahead::Unbounded,
            // An ideal network gives zero lookahead: fall back to
            // one-event epochs (still parallel-safe; rarely parallel-
            // profitable, which the dynamic engine choice handles).
            Some(c) if c.nanos() == 0 => Lookahead::SingleEvent,
            Some(c) => Lookahead::Window(c),
        }
    }

    /// Which lane an event belongs to. `Deliver` follows the target's
    /// *current* placement (stale `dest_pe` stamps still pay the forward
    /// hop); reliable-layer timers run on the sender's lane.
    fn event_pe(&self, ev: &Event) -> PeId {
        match ev {
            Event::Deliver { msg, .. } => self.location.lookup(msg.to),
            Event::PeWake { pe } => *pe,
            Event::Ack { from, .. } | Event::Retransmit { from, .. } => {
                self.location.lookup(*from)
            }
        }
    }

    /// Split an epoch's event batch into per-PE lanes, moving each PE's
    /// scheduler state into its lane. Batch order (time, global seq) is
    /// preserved within each lane. Drains `batch` so the caller can
    /// reuse the buffer.
    ///
    /// With `perf_fast`, lane queues and outboxes are recycled from
    /// `lane_slots` (returned by [`Self::merge_lanes`]) so steady-state
    /// epochs allocate nothing. Recycling is safe for the queue's
    /// monotonic `now`: every event in the next epoch's batch is at or
    /// beyond the previous horizon, which bounds every lane's `now`.
    fn make_lanes(&mut self, batch: &mut Vec<(SimTime, Event)>, horizon: SimTime) -> Vec<Lane> {
        let n = self.pes.len();
        if self.perf_fast && self.lane_slots.len() != n {
            // First epoch (or the PE count changed): pre-size each
            // lane's queue and outbox from the run shape so the
            // steady state never reallocates.
            let cap = (self.ranks.len() * 4 / n.max(1)).max(16);
            self.lane_slots = (0..n)
                .map(|_| (EventQueue::with_capacity(cap), Outbox::with_capacity(cap)))
                .collect();
        }
        let mut lanes: Vec<Lane> = (0..n)
            .map(|pe| {
                let (queue, out) = if self.perf_fast {
                    std::mem::take(&mut self.lane_slots[pe])
                } else {
                    (EventQueue::new(), Outbox::default())
                };
                Lane {
                    pe,
                    state: std::mem::take(&mut self.pes[pe]),
                    queue,
                    horizon,
                    out,
                }
            })
            .collect();
        for (t, ev) in batch.drain(..) {
            let pe = self.event_pe(&ev);
            lanes[pe].queue.schedule(t, ev);
        }
        lanes
    }

    /// Fold completed lanes back into the machine at the barrier:
    /// restore PE state, absorb counter deltas in PE order, merge
    /// cross-lane events into the global queue in deterministic
    /// (time, source PE, emission index) order, resolve deferred
    /// retransmit-exhaustion verdicts, and surface the canonical
    /// (earliest) error if any lane failed.
    fn merge_lanes(&mut self, lanes: Vec<Lane>) -> Result<(), RtsError> {
        let mut merged: Vec<(SimTime, PeId, Event)> = std::mem::take(&mut self.merge_buf);
        let mut exhausted: Vec<(PeId, worker::Exhausted)> = Vec::new();
        let mut errors: Vec<(SimTime, PeId, u8, RtsError)> = Vec::new();
        for mut lane in lanes {
            let pe = lane.pe;
            self.pes[pe] = std::mem::take(&mut lane.state);
            // A lane that errored stops mid-window; reinstate its
            // unprocessed events so machine state stays coherent.
            while let Some((t, ev)) = lane.queue.pop() {
                merged.push((t, pe, ev));
            }
            let out = &mut lane.out;
            self.total_switches += out.switches;
            self.messages_delivered += out.delivered;
            self.done_count += out.done;
            self.at_sync_count += out.at_sync;
            for ((a, b), v) in std::mem::take(&mut out.comm_bytes) {
                *self.comm_bytes.entry((a, b)).or_default() += v;
            }
            for _ in 0..out.forwards {
                self.location.note_forward();
            }
            self.tallies.absorb(&out.faults);
            self.hardening.absorb(&out.hardening);
            self.req.absorb(&out.req);
            self.engine.pool_hits += out.pool_hits;
            self.engine.pool_misses += out.pool_misses;
            if let Some(lr) = out.last_ran {
                self.last_ran = Some(lr);
            }
            for (t, ev) in out.events.drain(..) {
                merged.push((t, pe, ev));
            }
            for ex in out.exhausted.drain(..) {
                exhausted.push((pe, ex));
            }
            if let Some((t, class, e)) = out.error.take() {
                errors.push((t, pe, class, e));
            }
            let unrouted = std::mem::take(&mut out.unrouted);
            for msg in unrouted {
                self.deposit(msg);
            }
            // Recycle the lane's (now empty) queue and outbox so the
            // next epoch's `make_lanes` allocates nothing.
            if self.perf_fast && pe < self.lane_slots.len() {
                lane.out.reset();
                self.lane_slots[pe] = (lane.queue, lane.out);
            }
        }
        // Stable sort on (time, source PE); the per-lane emission index
        // is the push order the sort preserves, and the global queue's
        // sequence number is the final tie-break.
        merged.sort_by_key(|e| (e.0, e.1));
        for (t, _, ev) in merged.drain(..) {
            let at = t.max_of(self.queue.now());
            self.queue.schedule(at, ev);
        }
        self.merge_buf = merged;
        // Deferred retransmit exhaustions, judged against post-epoch
        // receive state in deterministic (time, sender PE) order.
        exhausted.sort_by_key(|&(pe, ref ex)| (ex.at, pe));
        for (pe, ex) in exhausted {
            let verdict = {
                let mut rel = self
                    .reliable
                    .as_ref()
                    .expect("reliable layer active")
                    .lock();
                if !rel.inflight.contains_key(&(ex.from, ex.to, ex.seq)) {
                    continue;
                }
                let delivered = rel
                    .recv
                    .get(&(ex.from, ex.to))
                    .is_some_and(|p| p.next_expected > ex.seq);
                if delivered {
                    // Receiver released it; only the acks were lost.
                    rel.inflight.remove(&(ex.from, ex.to, ex.seq));
                    None
                } else {
                    Some(RtsError::DeliveryFailed {
                        from: ex.from,
                        to: ex.to,
                        seq: ex.seq,
                        attempts: ex.attempts,
                    })
                }
            };
            if let Some(e) = verdict {
                errors.push((ex.at, pe, 1, e));
            }
        }
        errors.sort_by_key(|&(t, pe, class, _)| (t, pe, class));
        match errors.into_iter().next() {
            Some((_, _, _, e)) => Err(e),
            None => Ok(()),
        }
    }

    /// Shared state handle for one epoch/burst. Borrows are per-field so
    /// engines can hold it alongside `&mut` lanes and guard state.
    fn engine_shared(&self) -> EngineShared<'_> {
        EngineShared {
            clock: self.clock,
            topology: &self.topology,
            network: &self.network,
            location: &self.location,
            ranks: &self.ranks,
            hls: &self.pe_hls_blocks,
            alive: &self.alive,
            tracer: self.tracer.as_ref(),
            reliable: self.reliable.as_ref(),
            epoch_start: self.epoch,
            n_ranks: self.ranks.len(),
            max_outstanding_reqs: self.max_outstanding_reqs,
            perf_fast: self.perf_fast,
        }
    }

    fn record_worker_walls(&mut self, walls: Vec<Duration>) {
        if self.engine.worker_wall.len() < walls.len() {
            self.engine.worker_wall.resize(walls.len(), Duration::ZERO);
        }
        for (i, w) in walls.into_iter().enumerate() {
            self.engine.worker_wall[i] += w;
        }
    }

    /// Execute one epoch: split the batch into lanes, drive them (in
    /// parallel when profitable), and merge at the barrier. Serial and
    /// parallel paths run the *same* lane code, so the per-epoch engine
    /// choice cannot change results.
    fn run_epoch(
        &mut self,
        batch: &mut Vec<(SimTime, Event)>,
        horizon: SimTime,
        threads: usize,
    ) -> Result<(), RtsError> {
        self.engine.epochs += 1;
        let mut lanes = self.make_lanes(batch, horizon);
        let active = lanes.iter().filter(|l| !l.queue.is_empty()).count();
        let parallel = threads > 1 && active > 1;
        let walls;
        // Moved out so the guard context's `&mut` doesn't alias the
        // shared engine view's borrow of `self`.
        let mut baseline = std::mem::take(&mut self.segment_baseline);
        {
            let shared = self.engine_shared();
            if parallel {
                walls = engine_parallel::run_epoch_lanes(&shared, &mut lanes, threads);
            } else {
                let mut guard_ctx;
                let guard = if self.guards {
                    guard_ctx = GuardCtx {
                        privatizers: &self.privatizers,
                        baseline: &mut baseline,
                    };
                    Some(&mut guard_ctx)
                } else {
                    None
                };
                walls = engine_serial::run_epoch_lanes(&shared, &mut lanes, guard);
            }
        }
        self.segment_baseline = baseline;
        if parallel {
            self.engine.barriers += 1;
        }
        self.record_worker_walls(walls);
        self.merge_lanes(lanes)
    }

    /// One real-time scheduler burst: round-robin fair sweeps until no
    /// PE can make progress. Returns whether any slice ran.
    fn run_real_burst(&mut self, threads: usize) -> Result<bool, RtsError> {
        self.engine.epochs += 1;
        let mut lanes = self.make_lanes(&mut Vec::new(), SimTime::ZERO);
        let ran;
        let walls;
        let mut baseline = std::mem::take(&mut self.segment_baseline);
        {
            let shared = self.engine_shared();
            if threads > 1 {
                let (r, w) = engine_parallel::real_burst(&shared, &mut lanes, threads);
                ran = r;
                walls = w;
            } else {
                let mut guard_ctx;
                let guard = if self.guards {
                    guard_ctx = GuardCtx {
                        privatizers: &self.privatizers,
                        baseline: &mut baseline,
                    };
                    Some(&mut guard_ctx)
                } else {
                    None
                };
                let (r, w) = engine_serial::real_burst(&shared, &mut lanes, guard);
                ran = r;
                walls = w;
            }
        }
        self.segment_baseline = baseline;
        if threads > 1 {
            self.engine.barriers += 1;
        }
        self.record_worker_walls(walls);
        self.merge_lanes(lanes)?;
        Ok(ran > 0)
    }

    /// Run the job to completion.
    pub fn run(&mut self) -> Result<RunReport, RtsError> {
        let _scope = self.trace_scope();
        let threads = self.effective_threads();
        self.engine.threads = threads;
        let t0 = Instant::now();
        match self.clock {
            ClockMode::RealTime => self.run_real(threads)?,
            ClockMode::Virtual => self.run_virtual(threads)?,
        }
        let real_elapsed = t0.elapsed();
        if let Some(t) = &self.tracer {
            for (pe, p) in self.pes.iter().enumerate() {
                t.set_pe_clock(pe, p.busy.nanos(), p.idle.nanos());
            }
        }
        let cow = self.collect_cow_tallies();
        self.ckpt_tallies.chain_len = self
            .last_checkpoint
            .as_ref()
            .map(|c| Self::chain_len(c) as u32)
            .unwrap_or(0);
        Ok(RunReport {
            sim_elapsed: self
                .pes
                .iter()
                .map(|p| p.clock)
                .max()
                .unwrap_or(SimTime::ZERO)
                - SimTime::ZERO,
            real_elapsed,
            pe_busy_idle: self.pes.iter().map(|p| (p.busy, p.idle)).collect(),
            context_switches: self.total_switches,
            messages_delivered: self.messages_delivered,
            lb_steps: self.lb_steps,
            migrations: self.migrations.clone(),
            pe_clocks: self.pes.iter().map(|p| p.clock).collect(),
            lb_history: self.lb_history.clone(),
            faults: self.tallies,
            method_requested: self.method_requested,
            method_landed: self.method(),
            hardening: self.hardening,
            cow,
            elastic: self.elastic,
            ckpt: self.ckpt_tallies,
            req: self.req,
            engine: self.engine.clone(),
        })
    }

    /// Sum copy-on-write accounting across the per-process privatizers
    /// and run the end-of-run dedup audit: union the per-process
    /// faulted-page masks, count the pages that never diverged on any
    /// rank, and emit one `DedupAudit` trace event. All-zero (and no
    /// event) for eager methods.
    fn collect_cow_tallies(&mut self) -> CowTallies {
        let mut cow = CowTallies::default();
        let mut ranks: u64 = 0;
        let mut union: Vec<u64> = Vec::new();
        for p in &self.privatizers {
            let Some(s) = p.cow_stats() else { continue };
            cow.page_faults += s.page_faults;
            cow.pages_privatized += s.pages_privatized;
            cow.materialized_ranks += s.materialized_ranks;
            cow.total_pages = cow.total_pages.max(s.total_pages);
            ranks += s.ranks;
            if union.len() < s.faulted_page_union.len() {
                union.resize(s.faulted_page_union.len(), 0);
            }
            for (w, &m) in union.iter_mut().zip(&s.faulted_page_union) {
                *w |= m;
            }
        }
        if ranks == 0 && cow.total_pages == 0 {
            return cow;
        }
        let diverged: u64 = union.iter().map(|w| w.count_ones() as u64).sum();
        cow.shared_pages = cow.total_pages.saturating_sub(diverged);
        self.trace(
            0,
            pvr_trace::NO_RANK,
            pvr_trace::EventKind::DedupAudit {
                ranks: ranks as u32,
                shared_pages: cow.shared_pages,
                total_pages: cow.total_pages,
            },
        );
        cow
    }

    fn run_real(&mut self, threads: usize) -> Result<(), RtsError> {
        while self.done_count < self.ranks.len() {
            let progressed = self.run_real_burst(threads)?;
            if self.lb_due() {
                self.do_lb_step()?;
                continue;
            }
            if !progressed {
                let waiting: Vec<RankId> = self
                    .ranks
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| !r.is_done())
                    .map(|(i, _)| i)
                    .collect();
                if waiting.is_empty() {
                    break;
                }
                return Err(RtsError::Deadlock { waiting });
            }
        }
        Ok(())
    }

    fn run_virtual(&mut self, threads: usize) -> Result<(), RtsError> {
        // all PEs start at t=0
        for pe in 0..self.pes.len() {
            self.queue.schedule(SimTime::ZERO, Event::PeWake { pe });
        }
        let mut lookahead = self.lookahead();
        // Reused across epochs: `drain_until` and `make_lanes` both
        // drain it, so one warm buffer serves the whole run.
        let mut batch: Vec<(SimTime, Event)> = Vec::new();
        while self.done_count < self.ranks.len() {
            debug_assert!(batch.is_empty());
            if self.perf_fast {
                // Fast path: bulk epoch extraction in one pass.
                match lookahead {
                    Lookahead::Unbounded => self.queue.drain_until(SimTime::MAX, &mut batch),
                    Lookahead::SingleEvent => batch.extend(self.queue.pop()),
                    Lookahead::Window(l) => {
                        if let Some(t0) = self.queue.peek_time() {
                            self.queue.drain_until(t0.saturating_add(l), &mut batch);
                        }
                    }
                }
            } else {
                // Reference path: one heap pop per event (the oracle the
                // fast path is checked against).
                batch = match lookahead {
                    Lookahead::Unbounded => {
                        let mut b = Vec::new();
                        while let Some(e) = self.queue.pop() {
                            b.push(e);
                        }
                        b
                    }
                    Lookahead::SingleEvent => self.queue.pop().into_iter().collect(),
                    Lookahead::Window(l) => match self.queue.peek_time() {
                        None => Vec::new(),
                        Some(t0) => self.queue.pop_window(t0.saturating_add(l)),
                    },
                };
            }
            if batch.is_empty() {
                if self.lb_due() {
                    self.do_lb_step()?;
                    if self.geometry_dirty {
                        lookahead = self.lookahead();
                        self.geometry_dirty = false;
                    }
                    continue;
                }
                let waiting: Vec<RankId> = self
                    .ranks
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| !r.is_done())
                    .map(|(i, _)| i)
                    .collect();
                if waiting.is_empty() {
                    break;
                }
                return Err(RtsError::Deadlock { waiting });
            }
            let horizon = match lookahead {
                Lookahead::Unbounded => SimTime::MAX,
                // Horizon at the event's own time: every emission
                // crosses the barrier, replicating global-queue order.
                Lookahead::SingleEvent => batch[0].0,
                Lookahead::Window(l) => batch[0].0.saturating_add(l),
            };
            self.run_epoch(&mut batch, horizon, threads)?;
            if self.lb_due() {
                self.do_lb_step()?;
                if self.geometry_dirty {
                    lookahead = self.lookahead();
                    self.geometry_dirty = false;
                }
            }
        }
        Ok(())
    }
}

/// Epoch-window policy derived from the network model (see
/// [`Machine::lookahead`]).
#[derive(Debug, Clone, Copy)]
enum Lookahead {
    /// One PE (or no cross-PE pairs): a single epoch covers everything.
    Unbounded,
    /// Zero minimum cross-PE cost: one event per epoch.
    SingleEvent,
    /// Minimum cross-PE cost `L`: epochs are `[t0, t0 + L)` windows.
    Window(SimDuration),
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("method", &self.method())
            .field("pes", &self.pes.len())
            .field("ranks", &self.ranks.len())
            .field("clock", &self.clock)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::RankCtx;
    use crate::config::{ConfigError, MachineBuilder};
    use bytes::Bytes;
    use pvr_progimage::{link, ImageSpec, ProgramBinary, SharedFs};

    fn test_binary() -> Arc<ProgramBinary> {
        link(
            ImageSpec::builder("rts-test")
                .global("my_rank", 8)
                .static_var("round", 8)
                .build(),
        )
    }

    fn builder() -> MachineBuilder {
        MachineBuilder::new(test_binary())
    }

    #[test]
    fn single_rank_runs_to_completion() {
        let mut m = builder()
            .build(Arc::new(|ctx: RankCtx| {
                assert_eq!(ctx.rank(), 0);
                assert_eq!(ctx.n_ranks(), 1);
            }))
            .unwrap();
        let report = m.run().unwrap();
        assert!(report.context_switches >= 1);
    }

    #[test]
    fn ping_pong_between_two_ranks() {
        let mut m = builder()
            .topology(Topology::smp(1))
            .vp_ratio(2)
            .build(Arc::new(|ctx: RankCtx| {
                if ctx.rank() == 0 {
                    ctx.send(1, 42, Bytes::from_static(b"ping"));
                    let m = ctx.recv();
                    assert_eq!(&m.payload[..], b"pong");
                    assert_eq!(m.from, 1);
                } else {
                    let m = ctx.recv();
                    assert_eq!(&m.payload[..], b"ping");
                    assert_eq!(m.tag, 42);
                    ctx.send(0, 43, Bytes::from_static(b"pong"));
                }
            }))
            .unwrap();
        let report = m.run().unwrap();
        assert_eq!(report.messages_delivered, 2);
    }

    #[test]
    fn virtual_time_advances_with_compute() {
        let mut m = builder()
            .clock(ClockMode::Virtual)
            .vp_ratio(2)
            .build(Arc::new(|ctx: RankCtx| {
                ctx.compute(SimDuration::from_millis(5));
                let t = ctx.wtime();
                assert!(t >= 0.005, "clock should show computed time, got {t}");
            }))
            .unwrap();
        let report = m.run().unwrap();
        // both ranks on one PE: serial in virtual time
        assert_eq!(report.sim_elapsed, SimDuration::from_millis(10));
    }

    #[test]
    fn virtual_time_parallel_pes_overlap() {
        let mut m = builder()
            .clock(ClockMode::Virtual)
            .topology(Topology::non_smp(4))
            .vp_ratio(1)
            .build(Arc::new(|ctx: RankCtx| {
                ctx.compute(SimDuration::from_millis(5));
            }))
            .unwrap();
        let report = m.run().unwrap();
        // 4 PEs work in parallel in virtual time
        assert_eq!(report.sim_elapsed, SimDuration::from_millis(5));
    }

    #[test]
    fn virtual_messages_charge_network_latency() {
        let mut m = builder()
            .clock(ClockMode::Virtual)
            .topology(Topology::non_smp(2))
            .build(Arc::new(|ctx: RankCtx| {
                if ctx.rank() == 0 {
                    ctx.send(1, 0, Bytes::from_static(b"x"));
                } else {
                    let _ = ctx.recv();
                    // inter-node latency is 2us minimum
                    assert!(ctx.wtime() >= 2e-6);
                }
            }))
            .unwrap();
        let report = m.run().unwrap();
        assert!(report.sim_elapsed >= SimDuration::from_micros(2));
    }

    #[test]
    fn overdecomposition_hides_latency() {
        // The core AMPI claim: with blocking ranks, more VPs per PE
        // overlap communication gaps with other ranks' compute.
        let body = |ctx: RankCtx| {
            // each rank: compute, exchange with partner on other node,
            // compute again
            let me = ctx.rank();
            let n = ctx.n_ranks();
            let partner = (me + n / 2) % n;
            for _ in 0..4 {
                ctx.compute(SimDuration::from_micros(10));
                ctx.send(partner, 0, Bytes::from(vec![0u8; 10_000]));
                let _ = ctx.recv();
            }
        };
        let run = |ratio: usize| -> SimDuration {
            let mut m = builder()
                .clock(ClockMode::Virtual)
                .topology(Topology::non_smp(2))
                .vp_ratio(ratio)
                .build(Arc::new(body))
                .unwrap();
            m.run().unwrap().sim_elapsed
        };
        let t1 = run(1);
        let t8 = run(8);
        // per-rank work grows 8x but elapsed should grow far less than 8x
        // because communication overlaps with other ranks' compute.
        let per_rank_t1 = t1.as_secs_f64();
        let per_rank_t8 = t8.as_secs_f64() / 8.0;
        assert!(
            per_rank_t8 < per_rank_t1 * 0.9,
            "overdecomposition should hide latency: t1={t1}, t8={t8}"
        );
    }

    #[test]
    fn deadlock_detected() {
        let mut m = builder()
            .vp_ratio(2)
            .build(Arc::new(|ctx: RankCtx| {
                let _ = ctx.recv(); // everyone waits, nobody sends
            }))
            .unwrap();
        match m.run() {
            Err(RtsError::Deadlock { waiting }) => assert_eq!(waiting, vec![0, 1]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn deadlock_detected_virtual() {
        let mut m = builder()
            .clock(ClockMode::Virtual)
            .vp_ratio(2)
            .build(Arc::new(|ctx: RankCtx| {
                if ctx.rank() == 1 {
                    let _ = ctx.recv();
                }
            }))
            .unwrap();
        match m.run() {
            Err(RtsError::Deadlock { waiting }) => assert_eq!(waiting, vec![1]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn rank_panic_surfaces_with_rank_id() {
        let mut m = builder()
            .vp_ratio(2)
            .build(Arc::new(|ctx: RankCtx| {
                if ctx.rank() == 1 {
                    panic!("sabotage");
                }
            }))
            .unwrap();
        match m.run() {
            Err(RtsError::RankPanicked { rank, message }) => {
                assert_eq!(rank, 1);
                assert!(message.contains("sabotage"));
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn globals_are_privatized_through_the_machine() {
        // The Fig. 2/3 scenario end-to-end: write rank id to a global,
        // exchange messages (forcing interleaving), read it back.
        let body = |ctx: RankCtx| {
            let me = ctx.rank();
            let acc = ctx.instance().access("my_rank");
            acc.write_u64(me as u64);
            // force a context switch to the other rank
            ctx.yield_now();
            ctx.yield_now();
            let observed = acc.read_u64();
            // under PIEglobals the value must still be ours
            assert_eq!(observed, me as u64, "global leaked across ranks");
        };
        let mut m = builder()
            .method(Method::PieGlobals)
            .vp_ratio(2)
            .build(Arc::new(body))
            .unwrap();
        m.run().unwrap();
    }

    #[test]
    fn unprivatized_exhibits_the_bug() {
        use std::sync::atomic::AtomicU64;
        let observed = Arc::new(AtomicU64::new(u64::MAX));
        let obs = observed.clone();
        let body = move |ctx: RankCtx| {
            let me = ctx.rank();
            let acc = ctx.instance().access("my_rank");
            acc.write_u64(me as u64);
            ctx.yield_now();
            ctx.yield_now();
            if me == 0 {
                obs.store(acc.read_u64(), Ordering::SeqCst);
            }
        };
        let mut m = builder()
            .method(Method::Unprivatized)
            .vp_ratio(2)
            .build(Arc::new(body))
            .unwrap();
        m.run().unwrap();
        // rank 0 sees rank 1's value — the paper's Fig. 3 output
        assert_eq!(observed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn migration_moves_rank_and_preserves_state() {
        let mut m = builder()
            .method(Method::PieGlobals)
            .topology(Topology::non_smp(2))
            .vp_ratio(1)
            .build(Arc::new(|ctx: RankCtx| {
                if ctx.rank() != 0 {
                    return; // only rank 0 participates
                }
                let acc = ctx.instance().access("my_rank");
                acc.write_u64(7777);
                let _ = ctx.recv(); // park so the driver can migrate us
                assert_eq!(acc.read_u64(), 7777, "state must survive migration");
            }))
            .unwrap();
        // run rank 0 until it parks in recv: drive manually
        assert!(matches!(
            m.run_rank_slice(0),
            Ok(StopReason::BlockedRecv)
        ));
        let rec = m.migrate_now(0, 1).unwrap();
        assert_eq!(rec.from_pe, 0);
        assert_eq!(rec.to_pe, 1);
        assert!(rec.bytes > 128 * 1024, "stack+heap+segments must move");
        assert_eq!(m.location_of(0), 1);
        // wake it up and finish
        m.deposit(RtsMessage::new(1, 0, 0, Bytes::new()));
        m.run().unwrap();
    }

    #[test]
    fn migration_rejected_for_non_migratable_methods() {
        let mut m = builder()
            .method(Method::PipGlobals)
            .topology(Topology::non_smp(2))
            .build(Arc::new(|_ctx: RankCtx| {}))
            .unwrap();
        match m.migrate_now(0, 1) {
            Err(RtsError::BadMigration { detail, .. }) => {
                assert!(detail.contains("Isomalloc"))
            }
            other => panic!("expected BadMigration, got {other:?}"),
        }
    }

    #[test]
    fn at_sync_with_greedy_lb_rebalances() {
        use crate::lb::GreedyLb;
        // 4 ranks on 2 PEs; ranks 0,1 (PE 0) are heavy. After AtSync+LB,
        // heavy ranks should be split across PEs.
        let mut m = builder()
            .method(Method::PieGlobals)
            .clock(ClockMode::Virtual)
            .topology(Topology::non_smp(2))
            .vp_ratio(2)
            .balancer(Box::new(GreedyLb))
            .build(Arc::new(|ctx: RankCtx| {
                for _round in 0..2 {
                    let work = if ctx.rank() < 2 { 80 } else { 1 };
                    ctx.compute(SimDuration::from_millis(work));
                    ctx.at_sync();
                }
            }))
            .unwrap();
        let report = m.run().unwrap();
        assert_eq!(report.lb_steps, 2);
        assert!(!report.migrations.is_empty(), "LB must move ranks");
        // after LB the heavy ranks are on different PEs
        assert_ne!(m.location_of(0), m.location_of(1));
        // and the run is faster than the unbalanced serial 2*160ms
        assert!(report.sim_elapsed < SimDuration::from_millis(250));
    }

    #[test]
    fn lb_history_records_imbalance_reduction() {
        use crate::lb::GreedyLb;
        let mut m = builder()
            .method(Method::PieGlobals)
            .clock(ClockMode::Virtual)
            .topology(Topology::non_smp(2))
            .vp_ratio(4)
            .balancer(Box::new(GreedyLb))
            .build(Arc::new(|ctx: RankCtx| {
                for _ in 0..2 {
                    // ranks 0..4 (all on PE 0 initially) are heavy
                    let work = if ctx.rank() < 4 { 50 } else { 1 };
                    ctx.compute(SimDuration::from_millis(work));
                    ctx.at_sync();
                }
            }))
            .unwrap();
        let report = m.run().unwrap();
        assert_eq!(report.lb_history.len(), 2);
        let first = &report.lb_history[0];
        assert!(first.imbalance_before() > 1.5, "block map is imbalanced");
        assert!(
            first.imbalance_after() < first.imbalance_before(),
            "greedy must reduce imbalance: {} -> {}",
            first.imbalance_before(),
            first.imbalance_after()
        );
        assert!(first.migrations > 0);
        assert_eq!(first.step, 1);
    }

    #[test]
    fn lb_improves_makespan_vs_null() {
        use crate::lb::GreedyRefineLb;
        let body = |ctx: RankCtx| {
            for _round in 0..4 {
                // all the heavy ranks start block-mapped onto PE 0
                let work = if ctx.rank() < 4 { 40 } else { 1 };
                ctx.compute(SimDuration::from_millis(work));
                ctx.at_sync();
            }
        };
        let run = |lb: Option<Box<dyn LoadBalancer>>| {
            let mut b = builder()
                .method(Method::PieGlobals)
                .clock(ClockMode::Virtual)
                .topology(Topology::non_smp(4))
                .vp_ratio(4);
            if let Some(lb) = lb {
                b = b.balancer(lb);
            }
            let mut m = b.build(Arc::new(body)).unwrap();
            m.run().unwrap().sim_elapsed
        };
        let without = run(None);
        let with = run(Some(Box::new(GreedyRefineLb::default())));
        assert!(
            with < without,
            "LB should improve imbalanced run: {with} !< {without}"
        );
    }

    #[test]
    fn startup_reports_costs() {
        let m = builder()
            .method(Method::FsGlobals)
            .vp_ratio(4)
            .build(Arc::new(|_ctx: RankCtx| {}))
            .unwrap();
        assert!(m.simulated_startup_cost() > Duration::ZERO);
        assert!(m.per_rank_copied_bytes() > 0);
    }

    #[test]
    fn pip_namespace_exhaustion_at_build_time() {
        // 16 VPs on one PE needs 16 namespaces: stock glibc caps at 12.
        let err = builder()
            .method(Method::PipGlobals)
            .vp_ratio(16)
            .build(Arc::new(|_ctx: RankCtx| {}));
        match err {
            Err(ConfigError::Startup(PrivatizeError::Dl(
                pvr_progimage::DlError::NamespaceExhausted { .. },
            ))) => {}
            other => panic!("expected namespace exhaustion, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn wildcard_timer_monotone() {
        let mut m = builder()
            .clock(ClockMode::Virtual)
            .build(Arc::new(|ctx: RankCtx| {
                let t0 = ctx.wtime();
                ctx.compute(SimDuration::from_millis(1));
                let t1 = ctx.wtime();
                assert!(t1 >= t0 + 0.001);
            }))
            .unwrap();
        m.run().unwrap();
    }

    #[test]
    fn empty_pe_reduction_error_under_pieglobals() {
        use pvr_progimage::FunctionSpec;
        let bin = link(
            ImageSpec::builder("op-test")
                .global("g", 8)
                .function(FunctionSpec::new("combine", 64).with_callable(Arc::new(|_i, _o| {})))
                .build(),
        );
        let mut m = MachineBuilder::new(bin)
            .method(Method::PieGlobals)
            .topology(Topology::non_smp(2))
            .vp_ratio(1)
            .build(Arc::new(|ctx: RankCtx| {
                if ctx.rank() == 0 {
                    let _ = ctx.recv();
                }
            }))
            .unwrap();
        let offset = m.privatizer(0).fn_offset_of("combine").unwrap();
        // both PEs have a rank: resolution works everywhere
        assert!(m.resolve_op_on_pe(0, offset).is_ok());
        assert!(m.resolve_op_on_pe(1, offset).is_ok());
        // park rank 0, move it away: PE 0 becomes empty
        assert!(matches!(m.run_rank_slice(0), Ok(StopReason::BlockedRecv)));
        m.migrate_now(0, 1).unwrap();
        match m.resolve_op_on_pe(0, offset) {
            Err(RtsError::EmptyPeReduction { pe }) => assert_eq!(pe, 0),
            other => panic!("expected EmptyPeReduction, got {:?}", other.map(|_| ())),
        }
        // under TLSglobals the same situation is fine (shared code)
        let bin2 = link(
            ImageSpec::builder("op-test2")
                .global("g", 8)
                .function(FunctionSpec::new("combine", 64).with_callable(Arc::new(|_i, _o| {})))
                .build(),
        );
        let m2 = MachineBuilder::new(bin2)
            .method(Method::TlsGlobals)
            .topology(Topology::non_smp(2))
            .vp_ratio(1)
            .build(Arc::new(|_ctx: RankCtx| {}))
            .unwrap();
        assert!(m2.resolve_op_on_pe(0, offset).is_ok());
    }

    #[test]
    fn code_dedup_migration_skips_code_segments() {
        let build = |dedup: bool| {
            let mut m = builder()
                .method(Method::PieGlobals)
                .topology(Topology::non_smp(2))
                .code_dedup_migration(dedup)
                .build(Arc::new(|ctx: RankCtx| {
                    if ctx.rank() == 0 {
                        let _ = ctx.recv();
                    }
                }))
                .unwrap();
            m.drive_rank(0).unwrap();
            let rec = m.migrate_now(0, 1).unwrap();
            m.inject_message(RtsMessage::new(1, 0, 0, Bytes::new()));
            m.run().unwrap();
            rec.bytes
        };
        let full = build(false);
        let dedup = build(true);
        // test binary has a small code segment, but the delta must be
        // exactly visible
        assert!(
            dedup < full,
            "dedup migration must move fewer bytes: {dedup} vs {full}"
        );
    }

    #[test]
    fn checkpoint_restart_recovers_from_soft_fault() {
        use parking_lot::Mutex;
        // A checkpoint-compliant body: cross-sync state lives in the rank
        // heap and in stack scalars (as Isomalloc requires), and the
        // network is quiescent at every sync point.
        let finals: Arc<Mutex<Vec<(usize, f64, f64)>>> = Arc::new(Mutex::new(Vec::new()));
        let body_for = |finals: Arc<Mutex<Vec<(usize, f64, f64)>>>| -> Arc<dyn Fn(RankCtx) + Send + Sync> {
            Arc::new(move |ctx: RankCtx| {
                let data = ctx.heap_alloc_f64s(64);
                let mut acc: f64 = ctx.rank() as f64 + 1.0;
                for step in 0..6u64 {
                    for v in data.iter_mut() {
                        *v += acc;
                    }
                    // lock-step ring exchange (fully drained before sync)
                    let partner = (ctx.rank() + 1) % ctx.n_ranks();
                    ctx.send(
                        partner,
                        step,
                        bytes::Bytes::copy_from_slice(&acc.to_le_bytes()),
                    );
                    let m = ctx.recv();
                    acc = acc * 1.25 + f64::from_le_bytes(m.payload[..8].try_into().unwrap());
                    ctx.at_sync();
                }
                let sum: f64 = data.iter().sum();
                finals.lock().push((ctx.rank(), acc, sum));
            })
        };

        // reference run: no faults
        let f1 = finals.clone();
        let mut m = builder()
            .method(Method::PieGlobals)
            .topology(Topology::non_smp(2))
            .vp_ratio(2)
            .checkpoint_period(1)
            .build(body_for(f1))
            .unwrap();
        m.run().unwrap();
        let mut reference = finals.lock().clone();
        reference.sort_by_key(|a| a.0);
        finals.lock().clear();
        let (ckpts, recov) = m.fault_tolerance_stats();
        assert!(ckpts >= 5);
        assert_eq!(recov, 0);

        // faulty run: memory scribbled at LB step 3, recovered from the
        // step-3 checkpoint, recomputes forward
        let f2 = finals.clone();
        let mut m = builder()
            .method(Method::PieGlobals)
            .topology(Topology::non_smp(2))
            .vp_ratio(2)
            .checkpoint_period(1)
            .inject_fault_at_lb_step(3)
            .build(body_for(f2))
            .unwrap();
        m.run().unwrap();
        let (_, recov) = m.fault_tolerance_stats();
        assert_eq!(recov, 1, "the injected fault must trigger one recovery");
        let mut faulty = finals.lock().clone();
        faulty.sort_by_key(|a| a.0);
        assert_eq!(
            faulty, reference,
            "recovered run must produce identical results"
        );
    }

    #[test]
    fn fault_without_checkpoint_is_an_error() {
        // caught at build time now: a fault schedule with no checkpoint
        // period can never recover, so the configuration is rejected
        // before any rank runs
        match builder()
            .vp_ratio(2)
            .method(Method::PieGlobals)
            .inject_fault_at_lb_step(1)
            .build(Arc::new(|ctx: RankCtx| {
                ctx.at_sync();
            })) {
            Err(ConfigError::Invalid { detail }) => {
                assert!(detail.contains("checkpoint_period"), "{detail}")
            }
            other => panic!("expected Invalid error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn pe_failure_without_checkpoint_is_an_error() {
        match builder()
            .clock(ClockMode::Virtual)
            .topology(Topology::non_smp(2))
            .inject_pe_failure_at_lb_step(1, 1)
            .build(Arc::new(|ctx: RankCtx| {
                ctx.at_sync();
            })) {
            Err(ConfigError::Invalid { detail }) => {
                assert!(detail.contains("checkpoint_period"), "{detail}")
            }
            other => panic!("expected Invalid error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn pe_failure_target_must_exist() {
        match builder()
            .clock(ClockMode::Virtual)
            .topology(Topology::non_smp(2))
            .checkpoint_period(1)
            .inject_pe_failure_at_lb_step(1, 7)
            .build(Arc::new(|ctx: RankCtx| {
                ctx.at_sync();
            })) {
            Err(ConfigError::Invalid { detail }) => {
                assert!(detail.contains("out of range"), "{detail}")
            }
            other => panic!("expected Invalid error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn fault_plan_requires_virtual_clock() {
        use pvr_des::FaultPlan;
        let net = NetworkModel::infiniband().with_faults(FaultPlan::lossy_internode(1, 0.1, 0.0));
        match builder()
            .network(net)
            .checkpoint_period(1)
            .build(Arc::new(|_ctx: RankCtx| {})) {
            Err(ConfigError::Invalid { detail }) => {
                assert!(detail.contains("Virtual"), "{detail}")
            }
            other => panic!("expected Invalid error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn fallback_degrades_pip_to_fs_and_matches_direct_run() {
        // The acceptance scenario: PIPglobals requested with 16 ranks per
        // process on stock glibc (12-namespace budget). With the fallback
        // chain on, the probe rates PIPglobals resource-limited, degrades
        // to FSglobals, and the run completes with results bit-identical
        // to a direct FSglobals run.
        let body_for = |sink: Arc<Mutex<Vec<(usize, u64)>>>| -> Arc<dyn Fn(RankCtx) + Send + Sync> {
            Arc::new(move |ctx: RankCtx| {
                let me = ctx.rank();
                let acc = ctx.instance().access("my_rank");
                acc.write_u64(me as u64 * 3 + 1);
                ctx.yield_now();
                sink.lock().push((me, acc.read_u64()));
            })
        };
        let run = |fallback: bool, method: Method| {
            let out: Arc<Mutex<Vec<(usize, u64)>>> = Arc::new(Mutex::new(Vec::new()));
            let t = Tracer::new(1);
            t.enable();
            let mut b = builder().method(method).vp_ratio(16).tracer(t.clone());
            if fallback {
                b = b.fallback(true);
            }
            let mut m = b.build(body_for(out.clone())).unwrap();
            let report = m.run().unwrap();
            // trace events and RunReport tallies reconcile exactly
            let c = t.snapshot().counts;
            assert_eq!(c.method_probes, report.hardening.probes);
            assert_eq!(c.method_fallbacks, report.hardening.fallbacks);
            let landed = m.method();
            let mut v = out.lock().clone();
            v.sort();
            (landed, report, v)
        };
        let (landed, report, results) = run(true, Method::PipGlobals);
        assert_eq!(landed, Method::FsGlobals);
        assert_eq!(report.method_requested, Method::PipGlobals);
        assert_eq!(report.method_landed, Method::FsGlobals);
        assert_eq!(report.hardening.probes, 3, "pip, fs, pie each probed");
        assert_eq!(report.hardening.fallbacks, 1);
        assert_eq!(results.len(), 16);
        let (direct_landed, direct_report, direct_results) = run(false, Method::FsGlobals);
        assert_eq!(direct_landed, Method::FsGlobals);
        assert!(direct_report.hardening.is_clean(), "strict mode probes nothing");
        assert_eq!(
            results, direct_results,
            "degraded run must be bit-identical to the direct FSglobals run"
        );
    }

    #[test]
    fn midstartup_fs_failure_degrades_and_cleans_up() {
        // The probe passes (unbounded FS) but the injected write budget
        // runs dry at rank 2's copy: mid-startup degradation tears the
        // FSglobals attempt down (no leaked copies), skips the
        // probe-infeasible PIPglobals, and lands on PIEglobals.
        let fs = Arc::new(Mutex::new(SharedFs::new()));
        fs.lock().fail_writes_after(3); // deploy + 2 rank copies, then NoSpace
        let t = Tracer::new(1);
        t.enable();
        let mut m = builder()
            .method(Method::FsGlobals)
            .shared_fs(Some(fs.clone()))
            .vp_ratio(16)
            .fallback(true)
            .tracer(t.clone())
            .build(Arc::new(|_ctx: RankCtx| {}))
            .unwrap();
        assert_eq!(m.method_requested(), Method::FsGlobals);
        assert_eq!(m.method(), Method::PieGlobals);
        assert_eq!(fs.lock().file_count(), 0, "failed attempt must delete its copies");
        assert_eq!(fs.lock().bytes_used(), 0);
        m.run().unwrap();
        let h = m.hardening_stats();
        assert_eq!(h.probes, 3);
        assert_eq!(h.fallbacks, 2, "fs (mid-startup) -> pip (probe) -> pie");
        let c = t.snapshot().counts;
        assert_eq!(c.method_fallbacks, h.fallbacks);
        assert_eq!(c.method_probes, h.probes);
    }

    #[test]
    fn fallback_exhaustion_reports_every_failure() {
        // FS capped so FSglobals can't fit, 16 ranks so PIPglobals can't
        // either, and a chain without PIEglobals: nothing lands.
        let fs = Arc::new(Mutex::new(SharedFs::with_capacity(1024)));
        match builder()
            .method(Method::PipGlobals)
            .shared_fs(Some(fs))
            .vp_ratio(16)
            .fallback_chain(vec![Method::FsGlobals])
            .build(Arc::new(|_ctx: RankCtx| {}))
        {
            Err(ConfigError::NoFeasibleMethod { detail }) => {
                assert!(detail.contains("pipglobals"), "{detail}");
                assert!(detail.contains("fsglobals"), "{detail}");
            }
            other => panic!("expected NoFeasibleMethod, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn guards_rejected_for_unprivatized_method() {
        match builder()
            .method(Method::Unprivatized)
            .guards(true)
            .build(Arc::new(|_ctx: RankCtx| {}))
        {
            Err(ConfigError::Invalid { detail }) => {
                assert!(detail.contains("guards"), "{detail}")
            }
            other => panic!("expected Invalid error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn fallback_chain_rejects_env_unsupported_entry() {
        // Swapglobals can never run under the default (bridges2)
        // toolchain: naming it as a backup is a configuration error.
        match builder()
            .method(Method::PieGlobals)
            .fallback_chain(vec![Method::Swapglobals])
            .build(Arc::new(|_ctx: RankCtx| {}))
        {
            Err(ConfigError::Invalid { detail }) => {
                assert!(detail.contains("fallback_chain"), "{detail}");
                assert!(detail.contains("swapglobals"), "{detail}");
            }
            other => panic!("expected Invalid error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn empty_fallback_chain_rejected() {
        match builder()
            .fallback_chain(vec![])
            .build(Arc::new(|_ctx: RankCtx| {}))
        {
            Err(ConfigError::Invalid { detail }) => {
                assert!(detail.contains("fallback_chain"), "{detail}")
            }
            other => panic!("expected Invalid error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn scribbled_stack_trips_guard_with_clean_error() {
        let t = Tracer::new(1);
        t.enable();
        let mut m = builder()
            .method(Method::PieGlobals)
            .guards(true)
            .tracer(t.clone())
            .build(Arc::new(|ctx: RankCtx| {
                ctx.yield_now();
            }))
            .unwrap();
        m.corrupt_rank_stack(0);
        match m.run() {
            Err(RtsError::StackGuard { rank, detail }) => {
                assert_eq!(rank, 0);
                assert!(detail.contains("red zone"), "{detail}");
            }
            other => panic!("expected StackGuard, got {:?}", other.map(|_| ())),
        }
        assert_eq!(m.hardening_stats().stack_guard_trips, 1);
        assert_eq!(t.snapshot().counts.stack_guard_trips, 1);
    }

    #[test]
    fn double_free_trips_arena_guard() {
        let t = Tracer::new(1);
        t.enable();
        let mut m = builder()
            .method(Method::PieGlobals)
            .guards(true)
            .tracer(t.clone())
            .build(Arc::new(|ctx: RankCtx| {
                let p = ctx.heap_alloc(64, 8);
                ctx.heap_free(p, 64);
                ctx.heap_free(p, 64);
            }))
            .unwrap();
        match m.run() {
            Err(RtsError::ArenaGuard { rank, detail }) => {
                assert_eq!(rank, 0);
                assert!(detail.contains("double free"), "{detail}");
            }
            other => panic!("expected ArenaGuard, got {:?}", other.map(|_| ())),
        }
        assert_eq!(m.hardening_stats().arena_guard_trips, 1);
        assert_eq!(t.snapshot().counts.arena_guard_trips, 1);
    }

    #[test]
    fn valid_free_and_reuse_pass_the_guard() {
        let mut m = builder()
            .method(Method::PieGlobals)
            .guards(true)
            .build(Arc::new(|ctx: RankCtx| {
                let p = ctx.heap_alloc(64, 8);
                unsafe { std::ptr::write_bytes(p, 7, 64) };
                ctx.heap_free(p, 64);
                let q = ctx.heap_alloc(64, 8);
                unsafe { std::ptr::write_bytes(q, 9, 64) };
                ctx.heap_free(q, 64);
            }))
            .unwrap();
        let report = m.run().unwrap();
        assert_eq!(report.hardening.arena_guard_trips, 0);
        assert_eq!(report.hardening.stack_guard_trips, 0);
    }

    #[test]
    fn use_after_free_detected_at_the_barrier() {
        let t = Tracer::new(1);
        t.enable();
        let mut m = builder()
            .method(Method::PieGlobals)
            .guards(true)
            .tracer(t.clone())
            .build(Arc::new(|ctx: RankCtx| {
                let p = ctx.heap_alloc(64, 8);
                ctx.heap_free(p, 64);
                unsafe { *p = 1 }; // write through the stale pointer
                ctx.at_sync();
            }))
            .unwrap();
        match m.run() {
            Err(RtsError::ArenaGuard { rank, detail }) => {
                assert_eq!(rank, 0);
                assert!(detail.contains("use-after-free"), "{detail}");
            }
            other => panic!("expected ArenaGuard, got {:?}", other.map(|_| ())),
        }
        assert_eq!(t.snapshot().counts.arena_guard_trips, 1);
    }

    #[test]
    fn cross_rank_segment_bleed_is_detected_and_attributed() {
        let t = Tracer::new(1);
        t.enable();
        let mut m = builder()
            .method(Method::PieGlobals)
            .vp_ratio(2)
            .guards(true)
            .tracer(t.clone())
            .build(Arc::new(|ctx: RankCtx| {
                ctx.yield_now();
            }))
            .unwrap();
        m.corrupt_rank_segment(1);
        match m.run() {
            Err(RtsError::SegmentBleed { rank, writer }) => {
                assert_eq!(rank, 1, "rank 1's segment was dirtied");
                assert_eq!(writer, 0, "rank 0 held the PE when it was detected");
            }
            other => panic!("expected SegmentBleed, got {:?}", other.map(|_| ())),
        }
        assert_eq!(m.hardening_stats().segment_audits, 1);
        assert_eq!(t.snapshot().counts.segment_audits, 1);
    }

    #[test]
    fn guarded_run_stays_clean_and_audits_at_barriers() {
        let t = Tracer::new(1);
        t.enable();
        let mut m = builder()
            .method(Method::PieGlobals)
            .vp_ratio(2)
            .guards(true)
            .tracer(t.clone())
            .build(Arc::new(|ctx: RankCtx| {
                let me = ctx.rank();
                let acc = ctx.instance().access("my_rank");
                for _ in 0..2 {
                    acc.write_u64(me as u64);
                    ctx.yield_now();
                    assert_eq!(acc.read_u64(), me as u64);
                    ctx.at_sync();
                }
            }))
            .unwrap();
        let report = m.run().unwrap();
        assert_eq!(report.lb_steps, 2);
        assert_eq!(report.hardening.segment_audits, 2, "one audit per barrier");
        assert_eq!(report.hardening.stack_guard_trips, 0);
        assert_eq!(report.hardening.arena_guard_trips, 0);
        assert_eq!(t.snapshot().counts.segment_audits, report.hardening.segment_audits);
    }

    #[test]
    fn guards_survive_checkpoint_recovery_without_false_trips() {
        // A soft fault scribbles all rank memory (segment copies and
        // poisoned quarantine ranges included); recovery restores the
        // checkpoint and reseeds the guard state, so no false trips fire.
        let mut m = builder()
            .method(Method::PieGlobals)
            .vp_ratio(2)
            .guards(true)
            .checkpoint_period(1)
            .inject_fault_at_lb_step(2)
            .build(Arc::new(|ctx: RankCtx| {
                let p = ctx.heap_alloc(32, 8);
                ctx.heap_free(p, 32); // leaves a poisoned quarantine range
                let acc = ctx.instance().access("my_rank");
                for step in 0..3u64 {
                    acc.write_u64(ctx.rank() as u64 + step);
                    ctx.at_sync();
                    assert_eq!(acc.read_u64(), ctx.rank() as u64 + step);
                }
            }))
            .unwrap();
        let report = m.run().unwrap();
        assert_eq!(report.faults.recoveries, 1);
        assert_eq!(report.hardening.stack_guard_trips, 0);
        assert_eq!(report.hardening.arena_guard_trips, 0);
    }

    #[test]
    fn smp_topology_message_costs_cheaper_than_internode() {
        let run = |topo: Topology| -> SimDuration {
            let mut m = builder()
                .clock(ClockMode::Virtual)
                .topology(topo)
                .vp_ratio(1)
                .build(Arc::new(|ctx: RankCtx| {
                    if ctx.rank() == 0 {
                        ctx.send(1, 0, Bytes::from(vec![0u8; 1 << 20]));
                    } else {
                        let _ = ctx.recv();
                    }
                }))
                .unwrap();
            m.run().unwrap().sim_elapsed
        };
        let smp = run(Topology::smp(2)); // same process
        let non_smp = run(Topology::non_smp(2)); // different nodes
        assert!(
            smp < non_smp,
            "SMP-mode shared-memory path must be cheaper: {smp} vs {non_smp}"
        );
    }

    /// Regression: the real-time scheduler must round-robin PEs — one
    /// rank slice per PE per sweep — rather than draining one PE to
    /// exhaustion before looking at the next. The old loop produced
    /// `0,0,0,0,1,1,1,1`; the fair sweep interleaves `0,1,0,1,...`.
    #[test]
    fn real_time_scheduler_is_fair_across_pes() {
        let order: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = order.clone();
        let mut m = builder()
            .clock(ClockMode::RealTime)
            .parallelism(Parallelism::Serial) // interleave assert needs one thread
            .topology(Topology::non_smp(2))
            .vp_ratio(1)
            .build(Arc::new(move |ctx: RankCtx| {
                for _ in 0..4 {
                    sink.lock().push(ctx.rank());
                    ctx.yield_now();
                }
            }))
            .unwrap();
        m.run().unwrap();
        let got = order.lock().clone();
        assert_eq!(
            got,
            vec![0, 1, 0, 1, 0, 1, 0, 1],
            "PE slices must interleave round-robin"
        );
    }
}
