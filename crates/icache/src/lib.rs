//! # pvr-icache — L1 instruction-cache simulation (§4.5)
//!
//! The paper worried that duplicating code segments per rank (PIEglobals)
//! would inflate L1I misses, then measured with PAPI and got *opposite*
//! results on two machines: 22 % fewer misses than TLSglobals on
//! Bridges-2 (AMD EPYC), 15 % more on Stampede2 (Intel Ice Lake) —
//! inconclusive. This crate reproduces the experiment structurally: a
//! parameterized set-associative cache with LRU replacement, fed by
//! synthetic per-rank instruction-fetch traces interleaved at
//! context-switch granularity, comparing *shared* code (all ranks fetch
//! the same addresses — TLSglobals) against *duplicated* code (per-rank
//! base addresses — PIEglobals).
//!
//! **Model finding** (see `repro -- icache`): under a pure LRU L1I, the
//! duplicated footprint is a superset of the shared one, so duplication
//! can never *reduce* misses — it ranges from neutral (hot loops small
//! enough that per-rank copies co-reside) to catastrophic (per-rank hot
//! code exceeding capacity or aliasing page-colored sets). The paper's
//! PAPI measurement of 22% *fewer* misses under PIEglobals on EPYC
//! therefore cannot come from first-order cache behavior (it implicates
//! µop caches, BTBs, or prefetchers) — which is consistent with the
//! paper's own refusal to draw a conclusion from the counters.

pub mod cache;
pub mod counters;
pub mod trace;

pub use cache::{Cache, CacheConfig, Replacement};
pub use counters::Counters;
pub use trace::{interleave_round_robin, RankTrace, TraceConfig};

/// Result of one shared-vs-duplicated comparison.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    pub shared_misses: u64,
    pub duplicated_misses: u64,
    pub accesses: u64,
}

impl Comparison {
    /// Relative change of duplicated vs shared, in percent (negative =
    /// duplication has fewer misses, as the paper saw on Bridges-2).
    pub fn relative_change_pct(&self) -> f64 {
        if self.shared_misses == 0 {
            return 0.0;
        }
        (self.duplicated_misses as f64 - self.shared_misses as f64) / self.shared_misses as f64
            * 100.0
    }
}

/// Run the §4.5 experiment: `n_ranks` ULTs round-robin scheduled with
/// `quantum` fetches per context switch, each executing `cfg`-shaped
/// code, on `cache_cfg`.
pub fn compare_shared_vs_duplicated(
    cache_cfg: CacheConfig,
    trace_cfg: TraceConfig,
    n_ranks: usize,
    quantum: usize,
    seed: u64,
) -> Comparison {
    // Shared code: every rank's trace is based at the same address.
    let shared_traces: Vec<RankTrace> = (0..n_ranks)
        .map(|i| RankTrace::generate(&trace_cfg, 0x40_0000, seed ^ (i as u64)))
        .collect();
    // Duplicated code: per-rank segment copies at distinct page-aligned
    // addresses (real dlmopen/Isomalloc copies are page-aligned, which
    // means identical code offsets land on identical set indices — the
    // page-coloring aliasing hazard is part of the phenomenon).
    let stride = (trace_cfg.code_size + 0xFFF) & !0xFFF;
    let dup_traces: Vec<RankTrace> = (0..n_ranks)
        .map(|i| {
            RankTrace::generate(
                &trace_cfg,
                0x40_0000 + (i * (stride + 0x1000)) as u64,
                seed ^ (i as u64),
            )
        })
        .collect();

    let mut shared_cache = Cache::new(cache_cfg);
    for addr in interleave_round_robin(&shared_traces, quantum) {
        shared_cache.access(addr);
    }
    let mut dup_cache = Cache::new(cache_cfg);
    for addr in interleave_round_robin(&dup_traces, quantum) {
        dup_cache.access(addr);
    }

    let sc = shared_cache.counters();
    let dc = dup_cache.counters();
    debug_assert_eq!(sc.accesses, dc.accesses);
    Comparison {
        shared_misses: sc.misses,
        duplicated_misses: dc.misses,
        accesses: sc.accesses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplication_thrashes_when_working_set_exceeds_cache() {
        // 8 ranks × 16 KiB of hot code: shared fits a 32 KiB cache,
        // duplicated (128 KiB total) cannot.
        let cmp = compare_shared_vs_duplicated(
            CacheConfig::epyc_l1i(),
            TraceConfig {
                code_size: 16 * 1024,
                hot_fraction: 1.0,
                fetches: 20_000,
                loop_len: 512,
            },
            8,
            256,
            42,
        );
        assert!(
            cmp.duplicated_misses > cmp.shared_misses * 2,
            "expected thrashing: {cmp:?}"
        );
    }

    #[test]
    fn tiny_hot_loops_make_duplication_nearly_free() {
        // Few small hot loops per rank, fewer ranks than ways: per-rank
        // copies co-reside in the cache, so the miss-RATE difference is
        // negligible even though cold misses scale with rank count.
        let cmp = compare_shared_vs_duplicated(
            CacheConfig::epyc_l1i(),
            TraceConfig {
                code_size: 256 * 1024,
                hot_fraction: 0.01,
                fetches: 50_000,
                loop_len: 128,
            },
            4,
            256,
            42,
        );
        let shared_rate = cmp.shared_misses as f64 / cmp.accesses as f64;
        let dup_rate = cmp.duplicated_misses as f64 / cmp.accesses as f64;
        assert!(
            (dup_rate - shared_rate).abs() < 0.02,
            "miss-rate delta should be negligible: {shared_rate:.4} vs {dup_rate:.4}"
        );
    }

    #[test]
    fn lru_model_never_lets_duplication_win() {
        // The structural property that makes the paper's EPYC result
        // (22% FEWER misses under duplication) inexplicable by plain L1I
        // behavior: the duplicated footprint is a superset of the shared
        // one, so a pure LRU cache can only do as well or worse.
        for (hot, code, ranks) in [
            (1.0f64, 16 * 1024usize, 8usize),
            (0.005, 512 * 1024, 4),
            (0.1, 64 * 1024, 6),
        ] {
            let cmp = compare_shared_vs_duplicated(
                CacheConfig::epyc_l1i(),
                TraceConfig {
                    code_size: code,
                    hot_fraction: hot,
                    fetches: 30_000,
                    loop_len: 256,
                },
                ranks,
                128,
                7,
            );
            assert!(
                cmp.duplicated_misses + cmp.accesses / 100 >= cmp.shared_misses,
                "duplication beat sharing materially — LRU model violated: {cmp:?}"
            );
        }
    }
}
