//! PAPI-style hardware counters (the subset the experiment reads).

/// Counter block, after PAPI's `PAPI_L1_ICM` / access counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    pub accesses: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl Counters {
    pub fn hits(&self) -> u64 {
        self.accesses - self.misses
    }

    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let c = Counters {
            accesses: 100,
            misses: 25,
            evictions: 10,
        };
        assert_eq!(c.hits(), 75);
        assert_eq!(c.miss_rate(), 0.25);
        assert_eq!(Counters::default().miss_rate(), 0.0);
    }
}
