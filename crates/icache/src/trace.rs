//! Synthetic instruction-fetch traces.
//!
//! A rank's execution is modeled as mostly-sequential fetches within hot
//! loop bodies, with jumps between loops — a shape that captures what
//! matters for the shared-vs-duplicated question: the *footprint* of hot
//! code per rank and the *addresses* it occupies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of one rank's code-execution behavior.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Total code-segment size in bytes.
    pub code_size: usize,
    /// Fraction of the code that is hot (executed in loops).
    pub hot_fraction: f64,
    /// Number of instruction fetches to generate.
    pub fetches: usize,
    /// Fetches spent inside one loop before jumping to another.
    pub loop_len: usize,
}

/// One rank's fetch-address sequence.
#[derive(Debug, Clone)]
pub struct RankTrace {
    pub addrs: Vec<u64>,
}

impl RankTrace {
    /// Generate a trace for code based at `base`. Two ranks given the
    /// same seed and base produce identical traces (SPMD symmetry); the
    /// per-rank seed perturbation models slight divergence.
    pub fn generate(cfg: &TraceConfig, base: u64, seed: u64) -> RankTrace {
        assert!(cfg.code_size >= 64);
        let hot_bytes = ((cfg.code_size as f64 * cfg.hot_fraction) as usize).max(64);
        let n_loops = (hot_bytes / 256).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut addrs = Vec::with_capacity(cfg.fetches);
        let mut fetched = 0usize;
        while fetched < cfg.fetches {
            // pick a loop body within the hot region
            let loop_start =
                base + (rng.gen_range(0..n_loops) * 256) as u64 % cfg.code_size as u64;
            let body_len = 256u64.min(cfg.code_size as u64);
            let iters = cfg.loop_len / 64 + 1;
            for _ in 0..iters {
                let mut pc = loop_start;
                for _ in 0..(body_len / 4).min(64) {
                    addrs.push(pc);
                    pc += 4; // one instruction
                    fetched += 1;
                    if fetched >= cfg.fetches {
                        return RankTrace { addrs };
                    }
                }
            }
        }
        RankTrace { addrs }
    }

    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }
}

/// Interleave rank traces round-robin in `quantum`-fetch slices —
/// modeling ULT context switches between co-scheduled ranks on one PE.
pub fn interleave_round_robin(traces: &[RankTrace], quantum: usize) -> Vec<u64> {
    assert!(quantum > 0);
    let total: usize = traces.iter().map(|t| t.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursors = vec![0usize; traces.len()];
    let mut remaining = total;
    while remaining > 0 {
        for (t, cur) in traces.iter().zip(cursors.iter_mut()) {
            let take = quantum.min(t.len() - *cur);
            out.extend_from_slice(&t.addrs[*cur..*cur + take]);
            *cur += take;
            remaining -= take;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg() -> TraceConfig {
        TraceConfig {
            code_size: 64 * 1024,
            hot_fraction: 0.2,
            fetches: 1000,
            loop_len: 128,
        }
    }

    #[test]
    fn trace_respects_bounds_and_length() {
        let t = RankTrace::generate(&cfg(), 0x1000, 1);
        assert_eq!(t.len(), 1000);
        for &a in &t.addrs {
            assert!(a >= 0x1000);
            assert!(a < 0x1000 + 64 * 1024 + 256);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RankTrace::generate(&cfg(), 0, 5);
        let b = RankTrace::generate(&cfg(), 0, 5);
        let c = RankTrace::generate(&cfg(), 0, 6);
        assert_eq!(a.addrs, b.addrs);
        assert_ne!(a.addrs, c.addrs);
    }

    #[test]
    fn base_shifts_addresses() {
        let a = RankTrace::generate(&cfg(), 0, 5);
        let b = RankTrace::generate(&cfg(), 1 << 20, 5);
        for (x, y) in a.addrs.iter().zip(&b.addrs) {
            assert_eq!(x + (1 << 20), *y);
        }
    }

    #[test]
    fn interleave_preserves_all_fetches() {
        let traces: Vec<RankTrace> = (0..4)
            .map(|i| RankTrace::generate(&cfg(), 0, i))
            .collect();
        let merged = interleave_round_robin(&traces, 64);
        assert_eq!(merged.len(), 4000);
    }

    #[test]
    fn interleave_slices_in_quanta() {
        let t0 = RankTrace {
            addrs: vec![1; 10],
        };
        let t1 = RankTrace {
            addrs: vec![2; 10],
        };
        let merged = interleave_round_robin(&[t0, t1], 5);
        assert_eq!(&merged[0..5], &[1; 5]);
        assert_eq!(&merged[5..10], &[2; 5]);
        assert_eq!(&merged[10..15], &[1; 5]);
    }

    proptest! {
        #[test]
        fn prop_interleave_is_permutation(
            lens in proptest::collection::vec(1usize..50, 1..6),
            quantum in 1usize..32,
        ) {
            let traces: Vec<RankTrace> = lens
                .iter()
                .enumerate()
                .map(|(i, &l)| RankTrace { addrs: vec![i as u64; l] })
                .collect();
            let merged = interleave_round_robin(&traces, quantum);
            prop_assert_eq!(merged.len(), lens.iter().sum::<usize>());
            for (i, &l) in lens.iter().enumerate() {
                prop_assert_eq!(merged.iter().filter(|&&a| a == i as u64).count(), l);
            }
        }
    }
}
