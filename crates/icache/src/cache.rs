//! Set-associative cache with true-LRU replacement.

use crate::counters::Counters;

/// Replacement policy. Real L1I caches are rarely true-LRU (Zen 2 and
/// Ice Lake use tree-PLRU-like schemes); the choice shifts the
/// shared-vs-duplicated comparison, which is part of why PAPI counters
/// disagree across machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replacement {
    /// True least-recently-used.
    #[default]
    Lru,
    /// Round-robin (FIFO) victim selection per set.
    RoundRobin,
}

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl CacheConfig {
    /// AMD EPYC 7742 (Zen 2) L1I: 32 KiB, 8-way, 64 B lines — the
    /// paper's Bridges-2 nodes.
    pub fn epyc_l1i() -> CacheConfig {
        CacheConfig {
            size: 32 * 1024,
            line: 64,
            assoc: 8,
        }
    }

    /// Intel Ice Lake L1I: 32 KiB, 8-way, 64 B lines (Stampede2's Ice
    /// Lake partition).
    pub fn icelake_l1i() -> CacheConfig {
        CacheConfig {
            size: 32 * 1024,
            line: 64,
            assoc: 8,
        }
    }

    /// A deliberately small cache for tests.
    pub fn tiny() -> CacheConfig {
        CacheConfig {
            size: 1024,
            line: 64,
            assoc: 2,
        }
    }

    pub fn n_sets(&self) -> usize {
        self.size / self.line / self.assoc
    }
}

struct Set {
    /// (tag, last-use tick) per way; empty ways hold None.
    ways: Vec<Option<(u64, u64)>>,
    /// Round-robin cursor (RoundRobin policy).
    cursor: usize,
}

/// A simulated cache.
pub struct Cache {
    config: CacheConfig,
    replacement: Replacement,
    sets: Vec<Set>,
    tick: u64,
    counters: Counters,
}

impl Cache {
    pub fn new(config: CacheConfig) -> Cache {
        Cache::with_replacement(config, Replacement::Lru)
    }

    pub fn with_replacement(config: CacheConfig, replacement: Replacement) -> Cache {
        assert!(config.line.is_power_of_two(), "line size power of two");
        let n_sets = config.n_sets();
        assert!(n_sets > 0 && n_sets.is_power_of_two(), "sets power of two");
        Cache {
            config,
            replacement,
            sets: (0..n_sets)
                .map(|_| Set {
                    ways: vec![None; config.assoc],
                    cursor: 0,
                })
                .collect(),
            tick: 0,
            counters: Counters::default(),
        }
    }

    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Fetch one address; returns true on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        self.counters.accesses += 1;
        let line_addr = addr / self.config.line as u64;
        let set_idx = (line_addr as usize) & (self.sets.len() - 1);
        let tag = line_addr / self.sets.len() as u64;
        let set = &mut self.sets[set_idx];

        for (t, used) in set.ways.iter_mut().flatten() {
            if *t == tag {
                *used = self.tick;
                return true;
            }
        }
        self.counters.misses += 1;
        // fill: an empty way if any, else a policy-chosen victim
        let victim = if let Some(empty) = set.ways.iter().position(|w| w.is_none()) {
            empty
        } else {
            self.counters.evictions += 1;
            match self.replacement {
                Replacement::Lru => set
                    .ways
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.map_or(0, |(_, used)| used))
                    .map(|(i, _)| i)
                    .unwrap(),
                Replacement::RoundRobin => {
                    let v = set.cursor;
                    set.cursor = (set.cursor + 1) % set.ways.len();
                    v
                }
            }
        };
        set.ways[victim] = Some((tag, self.tick));
        false
    }

    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Drop all contents, keep counters (simulates a flush).
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            for w in &mut s.ways {
                *w = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(CacheConfig::tiny());
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1004), "same line");
        assert!(!c.access(0x1040), "next line misses");
        let k = c.counters();
        assert_eq!(k.accesses, 4);
        assert_eq!(k.misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // tiny: 1024/64/2 = 8 sets, 2-way. Three lines mapping to set 0:
        // line numbers 0, 8, 16 (stride 8 lines = 512B).
        let mut c = Cache::new(CacheConfig::tiny());
        c.access(0); // A miss
        c.access(512); // B miss
        assert!(c.access(0)); // A hit (B is now LRU)
        c.access(1024); // C miss, evicts B
        assert!(c.access(0), "A must survive");
        assert!(!c.access(512), "B was evicted");
    }

    #[test]
    fn working_set_within_cache_has_no_capacity_misses() {
        let cfg = CacheConfig::epyc_l1i();
        let mut c = Cache::new(cfg);
        let lines = cfg.size / cfg.line;
        // touch every line twice
        for round in 0..2 {
            for i in 0..lines {
                let hit = c.access((i * cfg.line) as u64);
                if round == 1 {
                    assert!(hit, "second pass must hit (line {i})");
                }
            }
        }
        assert_eq!(c.counters().misses as usize, lines);
    }

    #[test]
    fn flush_forces_refetch() {
        let mut c = Cache::new(CacheConfig::tiny());
        c.access(0);
        c.flush();
        assert!(!c.access(0));
    }

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::epyc_l1i().n_sets(), 64);
    }
}

#[cfg(test)]
mod replacement_tests {
    use super::*;

    #[test]
    fn round_robin_cycles_victims() {
        // tiny: 8 sets, 2-way; set 0 lines: 0, 512, 1024 bytes
        let mut c = Cache::with_replacement(CacheConfig::tiny(), Replacement::RoundRobin);
        c.access(0); // way 0
        c.access(512); // way 1
        assert!(c.access(0), "both resident");
        c.access(1024); // evicts way 0 (cursor) = line 0
        assert!(!c.access(0), "round-robin evicted the oldest slot");
        // unlike LRU, the recent touch of line 0 did not protect it
    }

    #[test]
    fn lru_and_rr_diverge_on_looping_pattern() {
        // classic: loop over assoc+1 lines of one set — LRU thrashes
        // (0% hits after warmup), round-robin also thrashes; but a
        // re-reference pattern distinguishes them
        let cfg = CacheConfig::tiny(); // 2-way
        let seq = [0u64, 512, 0, 1024, 0, 512, 0, 1024];
        let run = |r: Replacement| {
            let mut c = Cache::with_replacement(cfg, r);
            for &a in &seq {
                c.access(a);
            }
            c.counters().misses
        };
        let lru = run(Replacement::Lru);
        let rr = run(Replacement::RoundRobin);
        assert!(
            lru != rr,
            "policies should diverge on this pattern: lru={lru} rr={rr}"
        );
        assert!(lru < rr, "LRU protects the hot line 0: lru={lru} rr={rr}");
    }
}
