//! Program description: what the application's "source code" declares.
//!
//! Applications in this workspace do not use Rust `static`s for their
//! mutable program state — that would be privatized by the Rust compiler's
//! normal rules and nothing interesting would happen. Instead they declare
//! their globals in an [`ImageSpec`], and access them through the active
//! privatization method (see `pvr-privatize`). This mirrors how the paper
//! treats an application: a bag of global/static/TLS variables plus code.

use std::sync::Arc;

/// Whether a variable is written after initialization.
///
/// The paper notes that globals written only once to the same value on all
/// ranks are safe to share; `ReadOnly` models `const`/such write-once data
/// and lets methods skip privatizing it (a future-work memory optimization
/// the paper mentions, implemented here as `dedup_readonly`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutability {
    Mutable,
    ReadOnly,
}

/// Storage class of a variable — determines which mechanisms can privatize
/// it (e.g. Swapglobals covers globals but *not* function-local statics,
/// because those are not referenced through the GOT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarClass {
    /// Extern-visible global: referenced through the GOT in non-PIE code.
    Global,
    /// Function-local `static` (or Fortran `save` variable): lives in the
    /// data segment but is addressed directly, bypassing the GOT.
    Static,
    /// Tagged `thread_local` / `__thread` / OpenMP `threadprivate`:
    /// lives in the TLS segment.
    ThreadLocal,
}

/// One declared variable.
#[derive(Debug, Clone)]
pub struct GlobalSpec {
    pub name: String,
    pub size: usize,
    pub align: usize,
    /// Initial bytes; zero-filled to `size` (i.e. `.data` vs `.bss`).
    pub init: Vec<u8>,
    pub class: VarClass,
    pub mutability: Mutability,
}

impl GlobalSpec {
    pub fn new(name: &str, size: usize, class: VarClass) -> GlobalSpec {
        GlobalSpec {
            name: name.to_string(),
            size,
            align: size.next_power_of_two().clamp(1, 16),
            init: Vec::new(),
            class,
            mutability: Mutability::Mutable,
        }
    }

    pub fn with_init(mut self, init: &[u8]) -> Self {
        assert!(init.len() <= self.size);
        self.init = init.to_vec();
        self
    }

    pub fn read_only(mut self) -> Self {
        self.mutability = Mutability::ReadOnly;
        self
    }

    pub fn with_align(mut self, align: usize) -> Self {
        assert!(align.is_power_of_two());
        self.align = align;
        self
    }
}

/// The behavior a function body can carry in the model. Real computation
/// in the apps is Rust code; what the *image* needs is (a) a size in bytes
/// for code-segment accounting and (b) an optional callable so function
/// *pointers* (reduction operators, callbacks) can be resolved through an
/// image base + offset, as PIEglobals requires.
pub type Callable = Arc<dyn Fn(&[u8], &mut [u8]) + Send + Sync>;

/// One declared function.
#[derive(Clone)]
pub struct FunctionSpec {
    pub name: String,
    /// Machine-code size this function contributes to the code segment.
    pub code_size: usize,
    /// Optional behavior reachable via a function pointer (e.g. an MPI_Op
    /// user combine function).
    pub callable: Option<Callable>,
}

impl std::fmt::Debug for FunctionSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionSpec")
            .field("name", &self.name)
            .field("code_size", &self.code_size)
            .field("has_callable", &self.callable.is_some())
            .finish()
    }
}

impl FunctionSpec {
    pub fn new(name: &str, code_size: usize) -> FunctionSpec {
        FunctionSpec {
            name: name.to_string(),
            code_size,
            callable: None,
        }
    }

    pub fn with_callable(mut self, c: Callable) -> Self {
        self.callable = Some(c);
        self
    }
}

/// A C++ static constructor: runs at load time (when `dlopen` returns),
/// *before* any privatization can intercept it — the exact hazard §3.3
/// describes. It may heap-allocate and store pointers (data pointers and
/// function pointers, as in classes with vtables) into globals.
#[derive(Debug, Clone)]
pub struct CtorSpec {
    pub name: String,
    /// Heap allocations to make, in bytes; a pointer to allocation `i` is
    /// stored into the global named by `store_ptr_into[i]` (which must be
    /// a Global/Static of pointer size).
    pub heap_allocs: Vec<usize>,
    pub store_ptr_into: Vec<String>,
    /// Globals into which the ctor stores a *function pointer* (vtable
    /// slot model): (global name, function name).
    pub store_fn_ptr_into: Vec<(String, String)>,
    /// Globals into which the ctor stores a pointer to *another global*
    /// (intra-data-segment pointer): (dst global, src global).
    pub store_data_ptr_into: Vec<(String, String)>,
}

impl CtorSpec {
    pub fn new(name: &str) -> CtorSpec {
        CtorSpec {
            name: name.to_string(),
            heap_allocs: Vec::new(),
            store_ptr_into: Vec::new(),
            store_fn_ptr_into: Vec::new(),
            store_data_ptr_into: Vec::new(),
        }
    }

    pub fn alloc_into(mut self, bytes: usize, global: &str) -> Self {
        self.heap_allocs.push(bytes);
        self.store_ptr_into.push(global.to_string());
        self
    }

    pub fn fn_ptr_into(mut self, global: &str, function: &str) -> Self {
        self.store_fn_ptr_into
            .push((global.to_string(), function.to_string()));
        self
    }

    pub fn data_ptr_into(mut self, dst: &str, src: &str) -> Self {
        self.store_data_ptr_into
            .push((dst.to_string(), src.to_string()));
        self
    }
}

/// Source language — some methods are language-specific (Photran is a
/// Fortran refactoring tool).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Language {
    C,
    Cxx,
    Fortran,
}

/// Complete description of a program to be "compiled and linked".
#[derive(Debug, Clone)]
pub struct ImageSpec {
    pub name: String,
    pub vars: Vec<GlobalSpec>,
    pub functions: Vec<FunctionSpec>,
    pub ctors: Vec<CtorSpec>,
    /// Extra code bytes beyond declared functions — models the bulk of a
    /// real application (ADCIRC: ~14 MB; Jacobi-3D: ~3 MB).
    pub code_padding: usize,
    /// Whether the program is compiled as a Position Independent
    /// Executable. The runtime methods require `pie = true`.
    pub pie: bool,
    pub language: Language,
    /// Whether the program links shared objects beyond libc — FSglobals
    /// does not support these ("shared objects are currently not
    /// supported by FSglobals").
    pub uses_shared_objects: bool,
}

impl ImageSpec {
    pub fn builder(name: &str) -> ImageSpecBuilder {
        ImageSpecBuilder {
            spec: ImageSpec {
                name: name.to_string(),
                vars: Vec::new(),
                functions: Vec::new(),
                ctors: Vec::new(),
                code_padding: 0,
                pie: true,
                language: Language::C,
                uses_shared_objects: false,
            },
        }
    }

    pub fn var(&self, name: &str) -> Option<&GlobalSpec> {
        self.vars.iter().find(|v| v.name == name)
    }

    pub fn function(&self, name: &str) -> Option<&FunctionSpec> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Total code-segment size.
    pub fn code_size(&self) -> usize {
        self.functions.iter().map(|f| f.code_size).sum::<usize>() + self.code_padding
    }
}

/// Fluent builder for [`ImageSpec`].
pub struct ImageSpecBuilder {
    spec: ImageSpec,
}

impl ImageSpecBuilder {
    pub fn global(mut self, name: &str, size: usize) -> Self {
        self.spec.vars.push(GlobalSpec::new(name, size, VarClass::Global));
        self
    }

    pub fn static_var(mut self, name: &str, size: usize) -> Self {
        self.spec.vars.push(GlobalSpec::new(name, size, VarClass::Static));
        self
    }

    pub fn thread_local(mut self, name: &str, size: usize) -> Self {
        self.spec
            .vars
            .push(GlobalSpec::new(name, size, VarClass::ThreadLocal));
        self
    }

    pub fn var(mut self, v: GlobalSpec) -> Self {
        self.spec.vars.push(v);
        self
    }

    pub fn function(mut self, f: FunctionSpec) -> Self {
        self.spec.functions.push(f);
        self
    }

    pub fn ctor(mut self, c: CtorSpec) -> Self {
        self.spec.ctors.push(c);
        self
    }

    pub fn code_padding(mut self, bytes: usize) -> Self {
        self.spec.code_padding = bytes;
        self
    }

    pub fn pie(mut self, pie: bool) -> Self {
        self.spec.pie = pie;
        self
    }

    pub fn language(mut self, lang: Language) -> Self {
        self.spec.language = lang;
        self
    }

    pub fn uses_shared_objects(mut self, v: bool) -> Self {
        self.spec.uses_shared_objects = v;
        self
    }

    pub fn build(self) -> ImageSpec {
        // Duplicate names are a "link error".
        let mut names: Vec<&str> = self.spec.vars.iter().map(|v| v.name.as_str()).collect();
        names.sort_unstable();
        for w in names.windows(2) {
            assert_ne!(w[0], w[1], "duplicate variable name: {}", w[0]);
        }
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_spec() {
        let spec = ImageSpec::builder("app")
            .global("my_rank", 4)
            .static_var("counter", 8)
            .thread_local("scratch", 16)
            .function(FunctionSpec::new("kernel", 4096))
            .code_padding(1 << 20)
            .build();
        assert_eq!(spec.vars.len(), 3);
        assert_eq!(spec.code_size(), 4096 + (1 << 20));
        assert_eq!(spec.var("my_rank").unwrap().class, VarClass::Global);
        assert_eq!(spec.var("counter").unwrap().class, VarClass::Static);
        assert_eq!(spec.var("scratch").unwrap().class, VarClass::ThreadLocal);
        assert!(spec.var("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate variable name")]
    fn duplicate_names_rejected() {
        let _ = ImageSpec::builder("app").global("x", 4).global("x", 8).build();
    }

    #[test]
    fn init_data_capped_by_size() {
        let g = GlobalSpec::new("v", 8, VarClass::Global).with_init(&[1, 2, 3]);
        assert_eq!(g.init, vec![1, 2, 3]);
        assert_eq!(g.size, 8);
    }

    #[test]
    fn default_alignment_reasonable() {
        assert_eq!(GlobalSpec::new("a", 1, VarClass::Global).align, 1);
        assert_eq!(GlobalSpec::new("b", 4, VarClass::Global).align, 4);
        assert_eq!(GlobalSpec::new("c", 8, VarClass::Global).align, 8);
        assert_eq!(GlobalSpec::new("d", 1024, VarClass::Global).align, 16);
    }
}
