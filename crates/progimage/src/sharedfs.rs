//! Shared-filesystem model for FSglobals.
//!
//! FSglobals copies the PIE binary once per virtual rank onto a shared
//! filesystem and `dlopen`s each copy. Its startup cost is therefore
//! dominated by filesystem I/O, and — unlike the other methods — it
//! *scales with node count*, because every process on every node writes
//! and reads its ranks' copies through the same shared filesystem servers.
//!
//! This model charges a per-operation latency plus a bandwidth term, with
//! an optional contention factor for concurrent clients, and actually
//! stores the file bytes (so copy sizes and capacity limits are real).
//! Costs are returned as simulated [`Duration`]s; callers decide whether
//! to sleep them (real-time runs) or account them (reported totals).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Cost parameters; defaults approximate a busy Lustre-like parallel FS.
#[derive(Debug, Clone, Copy)]
pub struct FsCostModel {
    /// Fixed cost per metadata operation (create/open/stat).
    pub op_latency: Duration,
    /// Streaming bandwidth per client, bytes/second.
    pub bandwidth_bps: f64,
    /// Additional per-client slowdown factor applied when `clients`
    /// concurrent clients hammer the FS: effective_bw = bw / (1 +
    /// contention * (clients - 1)).
    pub contention: f64,
}

impl Default for FsCostModel {
    fn default() -> Self {
        FsCostModel {
            op_latency: Duration::from_micros(500),
            bandwidth_bps: 1.2e9,
            contention: 0.35,
        }
    }
}

impl FsCostModel {
    /// Cost of transferring `bytes` with `clients` concurrent clients.
    pub fn transfer_cost(&self, bytes: usize, clients: usize) -> Duration {
        let slow = 1.0 + self.contention * (clients.saturating_sub(1)) as f64;
        let secs = bytes as f64 / (self.bandwidth_bps / slow);
        self.op_latency + Duration::from_secs_f64(secs)
    }
}

/// Filesystem errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Capacity limit would be exceeded — FSglobals needs space for one
    /// binary copy per rank, which is a real deployment constraint.
    NoSpace { requested: usize, available: usize },
    NotFound { path: String },
    AlreadyExists { path: String },
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NoSpace {
                requested,
                available,
            } => write!(f, "shared fs: no space ({requested} B requested, {available} B free)"),
            FsError::NotFound { path } => write!(f, "shared fs: {path}: not found"),
            FsError::AlreadyExists { path } => write!(f, "shared fs: {path}: already exists"),
        }
    }
}

impl std::error::Error for FsError {}

#[derive(Debug)]
struct FileEntry {
    /// Refcounted so [`SharedFs::link_file`] can share one allocation
    /// across many paths (hardlink/reflink semantics).
    bytes: Arc<[u8]>,
    /// Whether this entry owns a distinct physical allocation
    /// (write/copy) or shares another entry's ([`SharedFs::link_file`]).
    physical: bool,
}

/// The shared filesystem visible to all simulated nodes.
pub struct SharedFs {
    files: HashMap<String, FileEntry>,
    cost: FsCostModel,
    capacity: Option<usize>,
    used: usize,
    /// Bytes backed by distinct allocations (links excluded) — the
    /// host-side memory the model actually committed.
    physical_used: usize,
    /// Total simulated I/O time charged so far (for reports).
    total_cost: Duration,
    ops: u64,
    /// Fault injection: writes remaining before the next one fails with
    /// `NoSpace` regardless of real capacity (None = off).
    fail_writes_after: Option<u64>,
}

impl SharedFs {
    pub fn new() -> SharedFs {
        SharedFs::with_cost_model(FsCostModel::default())
    }

    /// A filesystem with a byte-capacity limit from the start — the
    /// deployment constraint FSglobals runs into (one binary copy per
    /// rank must fit).
    pub fn with_capacity(cap: usize) -> SharedFs {
        let mut fs = SharedFs::new();
        fs.capacity = Some(cap);
        fs
    }

    pub fn with_cost_model(cost: FsCostModel) -> SharedFs {
        SharedFs {
            files: HashMap::new(),
            cost,
            capacity: None,
            used: 0,
            physical_used: 0,
            total_cost: Duration::ZERO,
            ops: 0,
            fail_writes_after: None,
        }
    }

    /// Impose a capacity limit (failure injection).
    pub fn set_capacity(&mut self, cap: Option<usize>) {
        self.capacity = cap;
    }

    /// The configured capacity limit, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Free bytes under the capacity limit (`usize::MAX` when unlimited).
    pub fn bytes_free(&self) -> usize {
        match self.capacity {
            Some(cap) => cap.saturating_sub(self.used),
            None => usize::MAX,
        }
    }

    /// Fault injection: let the next `n` writes succeed, then fail every
    /// subsequent write with `NoSpace` — models a quota or an FS filling
    /// up *under* a run whose capacity probe had passed.
    pub fn fail_writes_after(&mut self, n: u64) {
        self.fail_writes_after = Some(n);
    }

    /// Admission control for any operation that creates a file of `len`
    /// bytes at `path`: duplicate paths, injected write failures, and
    /// the capacity limit — shared by writes, copies, and links so every
    /// creation charges capacity identically.
    fn admit(&mut self, path: &str, len: usize) -> Result<(), FsError> {
        if self.files.contains_key(path) {
            return Err(FsError::AlreadyExists {
                path: path.to_string(),
            });
        }
        if let Some(left) = self.fail_writes_after.as_mut() {
            if *left == 0 {
                return Err(FsError::NoSpace {
                    requested: len,
                    available: 0,
                });
            }
            *left -= 1;
        }
        if let Some(cap) = self.capacity {
            let available = cap.saturating_sub(self.used);
            if len > available {
                return Err(FsError::NoSpace {
                    requested: len,
                    available,
                });
            }
        }
        Ok(())
    }

    /// Write a file; returns the simulated cost of doing so.
    pub fn write_file(
        &mut self,
        path: &str,
        bytes: Vec<u8>,
        clients: usize,
    ) -> Result<Duration, FsError> {
        self.admit(path, bytes.len())?;
        let cost = self.cost.transfer_cost(bytes.len(), clients);
        self.used += bytes.len();
        self.physical_used += bytes.len();
        self.files.insert(
            path.to_string(),
            FileEntry {
                bytes: bytes.into(),
                physical: true,
            },
        );
        self.total_cost += cost;
        self.ops += 1;
        Ok(cost)
    }

    /// Read a file's size (models the loader reading the copy); returns
    /// (size, simulated cost).
    pub fn read_file(&mut self, path: &str, clients: usize) -> Result<(usize, Duration), FsError> {
        let entry = self.files.get(path).ok_or_else(|| FsError::NotFound {
            path: path.to_string(),
        })?;
        let cost = self.cost.transfer_cost(entry.bytes.len(), clients);
        self.total_cost += cost;
        self.ops += 1;
        Ok((entry.bytes.len(), cost))
    }

    /// Copy a file server-side; returns the simulated cost (a read + a
    /// write through the client).
    pub fn copy_file(
        &mut self,
        src: &str,
        dst: &str,
        clients: usize,
    ) -> Result<Duration, FsError> {
        let bytes: Vec<u8> = self
            .files
            .get(src)
            .ok_or_else(|| FsError::NotFound {
                path: src.to_string(),
            })?
            .bytes
            .to_vec();
        let read_cost = self.cost.transfer_cost(bytes.len(), clients);
        self.total_cost += read_cost;
        self.ops += 1;
        let write_cost = self.write_file(dst, bytes, clients)?;
        Ok(read_cost + write_cost)
    }

    /// Link a file (hardlink/reflink): the new path shares `src`'s byte
    /// allocation instead of duplicating it. Deliberately charges the
    /// SAME simulated cost, capacity, and injected-failure budget as
    /// [`Self::copy_file`] — FSglobals still models one binary copy per
    /// rank on a space-limited shared FS, so every capacity probe,
    /// `NoSpace` failure, and reported I/O duration is bit-identical to
    /// the copy path. What a link saves is the *host-side* memcpy (see
    /// [`Self::physical_bytes_used`]), which is pure wall-clock.
    pub fn link_file(
        &mut self,
        src: &str,
        dst: &str,
        clients: usize,
    ) -> Result<Duration, FsError> {
        let (len, shared) = {
            let e = self.files.get(src).ok_or_else(|| FsError::NotFound {
                path: src.to_string(),
            })?;
            (e.bytes.len(), e.bytes.clone())
        };
        let read_cost = self.cost.transfer_cost(len, clients);
        self.total_cost += read_cost;
        self.ops += 1;
        self.admit(dst, len)?;
        let write_cost = self.cost.transfer_cost(len, clients);
        self.used += len;
        self.files.insert(
            dst.to_string(),
            FileEntry {
                bytes: shared,
                physical: false,
            },
        );
        self.total_cost += write_cost;
        self.ops += 1;
        Ok(read_cost + write_cost)
    }

    pub fn delete_file(&mut self, path: &str) -> Result<(), FsError> {
        match self.files.remove(path) {
            Some(e) => {
                self.used -= e.bytes.len();
                if e.physical {
                    self.physical_used -= e.bytes.len();
                }
                Ok(())
            }
            None => Err(FsError::NotFound {
                path: path.to_string(),
            }),
        }
    }

    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    pub fn bytes_used(&self) -> usize {
        self.used
    }

    /// Bytes backed by distinct allocations — excludes
    /// [`Self::link_file`] entries, which share their source's storage.
    /// Always ≤ [`Self::bytes_used`] (the capacity-charged figure).
    pub fn physical_bytes_used(&self) -> usize {
        self.physical_used
    }

    /// Total simulated I/O time charged so far.
    pub fn total_cost(&self) -> Duration {
        self.total_cost
    }

    pub fn op_count(&self) -> u64 {
        self.ops
    }
}

impl Default for SharedFs {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for SharedFs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedFs")
            .field("files", &self.files.len())
            .field("bytes_used", &self.used)
            .field("total_cost", &self.total_cost)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip_with_costs() {
        let mut fs = SharedFs::new();
        let c1 = fs.write_file("/a", vec![0u8; 1 << 20], 1).unwrap();
        assert!(c1 > Duration::ZERO);
        let (size, c2) = fs.read_file("/a", 1).unwrap();
        assert_eq!(size, 1 << 20);
        assert!(c2 > Duration::ZERO);
        assert_eq!(fs.total_cost(), c1 + c2);
        assert_eq!(fs.op_count(), 2);
    }

    #[test]
    fn bigger_files_cost_more() {
        let m = FsCostModel::default();
        assert!(m.transfer_cost(100 << 20, 1) > m.transfer_cost(1 << 20, 1));
    }

    #[test]
    fn contention_slows_transfers() {
        let m = FsCostModel::default();
        assert!(m.transfer_cost(10 << 20, 64) > m.transfer_cost(10 << 20, 1));
    }

    #[test]
    fn capacity_enforced() {
        let mut fs = SharedFs::new();
        fs.set_capacity(Some(1000));
        fs.write_file("/a", vec![0u8; 600], 1).unwrap();
        match fs.write_file("/b", vec![0u8; 600], 1) {
            Err(FsError::NoSpace { available, .. }) => assert_eq!(available, 400),
            other => panic!("expected NoSpace, got {other:?}"),
        }
        // deleting frees space
        fs.delete_file("/a").unwrap();
        fs.write_file("/b", vec![0u8; 600], 1).unwrap();
    }

    #[test]
    fn with_capacity_reports_free_space() {
        let mut fs = SharedFs::with_capacity(1000);
        assert_eq!(fs.capacity(), Some(1000));
        assert_eq!(fs.bytes_free(), 1000);
        fs.write_file("/a", vec![0u8; 300], 1).unwrap();
        assert_eq!(fs.bytes_free(), 700);
        // unlimited fs reports "infinite" free space
        assert_eq!(SharedFs::new().bytes_free(), usize::MAX);
    }

    #[test]
    fn fail_writes_after_trips_on_the_nth_write() {
        let mut fs = SharedFs::new();
        fs.fail_writes_after(2);
        fs.write_file("/a", vec![1], 1).unwrap();
        fs.write_file("/b", vec![2], 1).unwrap();
        match fs.write_file("/c", vec![3], 1) {
            Err(FsError::NoSpace { available, .. }) => assert_eq!(available, 0),
            other => panic!("expected injected NoSpace, got {other:?}"),
        }
        // reads are unaffected
        assert!(fs.read_file("/a", 1).is_ok());
    }

    #[test]
    fn duplicate_write_rejected() {
        let mut fs = SharedFs::new();
        fs.write_file("/a", vec![1], 1).unwrap();
        assert!(matches!(
            fs.write_file("/a", vec![2], 1),
            Err(FsError::AlreadyExists { .. })
        ));
    }

    #[test]
    fn copy_file_duplicates_bytes() {
        let mut fs = SharedFs::new();
        fs.write_file("/bin", vec![7u8; 4096], 1).unwrap();
        let cost = fs.copy_file("/bin", "/bin.rank0", 8).unwrap();
        assert!(cost > Duration::ZERO);
        assert!(fs.exists("/bin.rank0"));
        assert_eq!(fs.bytes_used(), 8192);
    }

    #[test]
    fn link_file_charges_like_copy_but_shares_bytes() {
        let mut copied = SharedFs::new();
        let mut linked = SharedFs::new();
        for fs in [&mut copied, &mut linked] {
            fs.write_file("/bin", vec![7u8; 4096], 1).unwrap();
        }
        let c = copied.copy_file("/bin", "/bin.rank0", 8).unwrap();
        let l = linked.link_file("/bin", "/bin.rank0", 8).unwrap();
        // Identical observable accounting: simulated cost, logical
        // bytes, op count — the model's behavior cannot depend on which
        // path ran.
        assert_eq!(c, l);
        assert_eq!(copied.bytes_used(), linked.bytes_used());
        assert_eq!(copied.op_count(), linked.op_count());
        assert_eq!(copied.total_cost(), linked.total_cost());
        // ...but only the copy committed a second allocation.
        assert_eq!(copied.physical_bytes_used(), 8192);
        assert_eq!(linked.physical_bytes_used(), 4096);
        // link contents read back identically and deletes free capacity
        let (size, _) = linked.read_file("/bin.rank0", 1).unwrap();
        assert_eq!(size, 4096);
        linked.delete_file("/bin.rank0").unwrap();
        assert_eq!(linked.bytes_used(), 4096);
        assert_eq!(linked.physical_bytes_used(), 4096);
    }

    #[test]
    fn link_file_respects_capacity_and_injected_failures() {
        // capacity: a link still needs the same space as a copy
        let mut fs = SharedFs::with_capacity(6000);
        fs.write_file("/bin", vec![1u8; 4096], 1).unwrap();
        match fs.link_file("/bin", "/bin.rank0", 1) {
            Err(FsError::NoSpace { available, .. }) => assert_eq!(available, 6000 - 4096),
            other => panic!("expected NoSpace, got {other:?}"),
        }
        // injected write failures trip links exactly like writes
        let mut fs = SharedFs::new();
        fs.write_file("/bin", vec![1u8; 64], 1).unwrap();
        fs.fail_writes_after(1);
        fs.link_file("/bin", "/l1", 1).unwrap();
        assert!(matches!(
            fs.link_file("/bin", "/l2", 1),
            Err(FsError::NoSpace { .. })
        ));
        // duplicate destinations rejected
        assert!(matches!(
            fs.link_file("/bin", "/l1", 1),
            Err(FsError::AlreadyExists { .. })
        ));
    }

    #[test]
    fn missing_file_errors() {
        let mut fs = SharedFs::new();
        assert!(matches!(
            fs.read_file("/nope", 1),
            Err(FsError::NotFound { .. })
        ));
        assert!(matches!(
            fs.copy_file("/nope", "/x", 1),
            Err(FsError::NotFound { .. })
        ));
        assert!(matches!(fs.delete_file("/nope"), Err(FsError::NotFound { .. })));
    }
}
