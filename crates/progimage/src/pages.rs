//! Page-granular copy-on-write image model (the "COWglobals" substrate).
//!
//! The paper's §6 future work proposes deduplicating identical privatized
//! state across ranks instead of eagerly copying O(ranks × segment)
//! bytes. This module provides the mechanism:
//!
//! * [`PageTemplate`] — an immutable snapshot of a segment, chopped into
//!   fixed-size pages held behind `Arc`s. Every rank shares the same
//!   template read-only; a read of a never-written page costs one page
//!   table lookup and touches no per-rank memory.
//! * [`CowSegment`] — one rank's view of the template: a page table
//!   mapping each page to either the shared template page or a private
//!   copy inside the rank's backing store (Isomalloc-managed, so private
//!   pages migrate and checkpoint with the rank). The first write to a
//!   shared page takes a *simulated fault*: the page is copied into the
//!   backing store, marked private, and the write applied there.
//! * [`DirtyTracker`] — the per-rank dirty-page set and fault counter,
//!   exposed as an API so incremental checkpointing (ROADMAP item 5) can
//!   pack only diverged pages, and so the dedup audit can report pages
//!   that never diverged on any rank.
//! * [`CowCell`] — an interior-mutable wrapper letting a rank's
//!   `VarAccess` handles fault pages through a shared reference; sound
//!   because a rank's accesses only execute while the rank is active on
//!   exactly one scheduler lane.
//!
//! The privatization method built on this model lives in
//! `pvr-privatize::methods::CowGlobals`; this module is pure mechanism.

use std::cell::UnsafeCell;
use std::sync::Arc;

/// Default simulated page size: the x86-64 base page.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// An immutable segment snapshot as a table of `Arc`'d pages, shared
/// read-only by every rank. The final page is zero-padded to `page_size`
/// so page-wise copies never need a length special case.
#[derive(Debug, Clone)]
pub struct PageTemplate {
    page_size: usize,
    len: usize,
    pages: Vec<Arc<[u8]>>,
}

impl PageTemplate {
    /// Snapshot `bytes` into pages of `page_size` (must be a power of
    /// two).
    pub fn new(bytes: &[u8], page_size: usize) -> PageTemplate {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        let pages = bytes
            .chunks(page_size)
            .map(|chunk| {
                let mut page = vec![0u8; page_size];
                page[..chunk.len()].copy_from_slice(chunk);
                Arc::from(page.into_boxed_slice())
            })
            .collect();
        PageTemplate {
            page_size,
            len: bytes.len(),
            pages,
        }
    }

    /// Snapshot with the default page size.
    pub fn from_bytes(bytes: &[u8]) -> PageTemplate {
        PageTemplate::new(bytes, DEFAULT_PAGE_SIZE)
    }

    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Length of the snapshotted segment (excludes final-page padding).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }

    /// The page index covering byte `offset`.
    pub fn page_of(&self, offset: usize) -> usize {
        offset / self.page_size
    }

    /// One shared page, padded to `page_size`.
    pub fn page(&self, index: usize) -> &Arc<[u8]> {
        &self.pages[index]
    }

    /// Copy `out.len()` bytes starting at `offset`, walking pages.
    pub fn read(&self, mut offset: usize, out: &mut [u8]) {
        let mut done = 0;
        while done < out.len() {
            let page = &self.pages[offset / self.page_size];
            let in_page = offset % self.page_size;
            let n = (self.page_size - in_page).min(out.len() - done);
            out[done..done + n].copy_from_slice(&page[in_page..in_page + n]);
            done += n;
            offset += n;
        }
    }
}

/// Per-rank dirty-page set plus fault accounting — the substrate for
/// incremental checkpointing and the dedup audit.
///
/// Beyond the ever-privatized set, the tracker stamps every written page
/// with the *epoch* it was last written in. Incremental checkpointing
/// advances the epoch at each capture and asks for
/// [`Self::pages_dirty_since`] a floor epoch — pages written since the
/// last checkpoint, a strict subset of the ever-privatized set.
#[derive(Debug, Clone)]
pub struct DirtyTracker {
    dirty: Vec<bool>,
    faults: u64,
    /// Current write epoch. Starts at 1 so an epoch stamp of 0 always
    /// means "never written".
    epoch: u64,
    /// Epoch each page was last written in (0 = never).
    page_epoch: Vec<u64>,
}

impl DirtyTracker {
    fn new(n_pages: usize) -> DirtyTracker {
        DirtyTracker {
            dirty: vec![false; n_pages],
            faults: 0,
            epoch: 1,
            page_epoch: vec![0; n_pages],
        }
    }

    /// Stamp page `index` as written in the current epoch.
    fn stamp(&mut self, index: usize) {
        self.page_epoch[index] = self.epoch;
    }

    pub fn n_pages(&self) -> usize {
        self.dirty.len()
    }

    /// Whether page `index` has been privatized (written at least once).
    pub fn is_dirty(&self, index: usize) -> bool {
        self.dirty[index]
    }

    /// Number of privatized pages.
    pub fn dirty_count(&self) -> usize {
        self.dirty.iter().filter(|&&d| d).count()
    }

    /// Indices of privatized pages, ascending.
    pub fn dirty_pages(&self) -> impl Iterator<Item = usize> + '_ {
        self.dirty
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| i)
    }

    /// Total simulated page faults taken (equals [`Self::dirty_count`]
    /// in this model: one fault privatizes one page, forever).
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// The current write epoch (starts at 1).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Close the current epoch and open the next: pages written from now
    /// on stamp the new epoch. Returns the new current epoch.
    pub fn advance_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// The epoch page `index` was last written in (0 = never written).
    pub fn page_epoch(&self, index: usize) -> u64 {
        self.page_epoch[index]
    }

    /// Indices of pages written in epoch `since` or later, ascending —
    /// the incremental-checkpoint dirty set for a capture whose floor is
    /// `since`. Pages never written are excluded regardless of `since`.
    pub fn pages_dirty_since(&self, since: u64) -> impl Iterator<Item = usize> + '_ {
        self.page_epoch
            .iter()
            .enumerate()
            .filter(move |(_, &e)| e > 0 && e >= since)
            .map(|(i, _)| i)
    }
}

/// One rank's copy-on-write view of a [`PageTemplate`].
///
/// `base..base+len` is the rank-owned backing store (an Isomalloc data
/// region, zero-filled at creation). A page table entry is either
/// *shared* (reads come from the template) or *private* (the page slot in
/// the backing store holds the authoritative bytes). The backing store
/// uses natural page offsets, so a fully materialized segment is
/// byte-identical to an eager whole-segment copy.
#[derive(Debug)]
pub struct CowSegment {
    template: Arc<PageTemplate>,
    base: *mut u8,
    len: usize,
    tracker: DirtyTracker,
    /// Whether the still-shared pages were copied into the backing store
    /// for an external whole-segment view (audit/pack). Sticky: the copy
    /// happens at most once so audit checksums stay stable.
    materialized: bool,
}

impl CowSegment {
    /// Wrap rank-owned backing memory of the template's length.
    ///
    /// # Safety
    /// `base` must point to at least `template.len()` writable bytes that
    /// outlive this segment and are not accessed through other aliases
    /// while the segment is live (the Isomalloc region discipline).
    pub unsafe fn new(template: Arc<PageTemplate>, base: *mut u8) -> CowSegment {
        let n_pages = template.n_pages();
        let len = template.len();
        CowSegment {
            template,
            base,
            len,
            tracker: DirtyTracker::new(n_pages),
            materialized: false,
        }
    }

    pub fn template(&self) -> &Arc<PageTemplate> {
        &self.template
    }

    pub fn base(&self) -> *mut u8 {
        self.base
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn page_size(&self) -> usize {
        self.template.page_size()
    }

    pub fn tracker(&self) -> &DirtyTracker {
        &self.tracker
    }

    /// Bytes of per-rank memory actually holding private page copies.
    pub fn resident_private_bytes(&self) -> usize {
        self.tracker.dirty_count() * self.page_size()
    }

    /// Usable length of page `index` (the final page may be partial).
    fn page_extent(&self, index: usize) -> usize {
        let start = index * self.page_size();
        (self.len - start).min(self.page_size())
    }

    /// Take the simulated fault for page `index` if it is still shared:
    /// copy the template page into the backing slot and mark it private.
    /// Returns `true` when this call privatized the page.
    pub fn privatize_page(&mut self, index: usize) -> bool {
        if self.tracker.dirty[index] {
            return false;
        }
        let n = self.page_extent(index);
        let src = self.template.page(index);
        // SAFETY: the backing store spans `len` bytes (CowSegment::new
        // contract) and this page slot lies inside it.
        unsafe {
            std::ptr::copy_nonoverlapping(
                src.as_ptr(),
                self.base.add(index * self.page_size()),
                n,
            );
        }
        self.tracker.dirty[index] = true;
        self.tracker.faults += 1;
        self.tracker.stamp(index);
        true
    }

    /// Non-faulting read: private pages from the backing store, shared
    /// pages from the template.
    pub fn read(&self, offset: usize, out: &mut [u8]) {
        debug_assert!(offset + out.len() <= self.len, "read past segment end");
        let ps = self.page_size();
        let mut done = 0;
        while done < out.len() {
            let at = offset + done;
            let page = at / ps;
            let in_page = at % ps;
            let n = (ps - in_page).min(out.len() - done);
            if self.tracker.dirty[page] {
                // SAFETY: in-bounds per the debug_assert above and the
                // backing-store contract.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        self.base.add(at),
                        out[done..].as_mut_ptr(),
                        n,
                    );
                }
            } else {
                out[done..done + n].copy_from_slice(&self.template.page(page)[in_page..in_page + n]);
            }
            done += n;
        }
    }

    /// Write through the fault handler: every touched page that is still
    /// shared is privatized first. Returns the indices of pages this
    /// write privatized (empty for warm writes), so the caller can emit
    /// trace events.
    pub fn write(&mut self, offset: usize, bytes: &[u8]) -> Vec<u32> {
        debug_assert!(offset + bytes.len() <= self.len, "write past segment end");
        let first = offset / self.page_size();
        let last = (offset + bytes.len().max(1) - 1) / self.page_size();
        let mut faulted = Vec::new();
        for page in first..=last {
            if self.privatize_page(page) {
                faulted.push(page as u32);
            }
            // warm writes re-stamp too: the page is dirty again in the
            // current checkpoint epoch even though it faulted long ago
            self.tracker.stamp(page);
        }
        // SAFETY: in-bounds; all covered pages are now private, so the
        // backing store is authoritative for this range.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), self.base.add(offset), bytes.len());
        }
        faulted
    }

    /// Privatize every page covering `offset..offset+len` and return a
    /// raw pointer into the backing store — the escape hatch for code
    /// that needs a stable address (pointer identity, FFI-style access).
    /// Returns the newly privatized pages like [`Self::write`].
    pub fn writable_ptr(&mut self, offset: usize, len: usize) -> (*mut u8, Vec<u32>) {
        debug_assert!(offset + len <= self.len, "pointer range past segment end");
        let first = offset / self.page_size();
        let last = (offset + len.max(1) - 1) / self.page_size();
        let mut faulted = Vec::new();
        for page in first..=last {
            if self.privatize_page(page) {
                faulted.push(page as u32);
            }
            // the caller holds a raw pointer it may write through later;
            // conservatively treat the whole range as written now
            self.tracker.stamp(page);
        }
        // SAFETY: offset is in-bounds per the debug_assert.
        (unsafe { self.base.add(offset) }, faulted)
    }

    /// Make the backing store a complete whole-segment view by copying
    /// every still-shared template page into its slot — *without* marking
    /// pages dirty or counting faults (materialization is bookkeeping,
    /// not divergence). Sticky: only the first call copies, so external
    /// mutations of the backing store (e.g. injected corruption that the
    /// segment-bleed audit must catch) are never papered over.
    pub fn materialize(&mut self) {
        if self.materialized {
            return;
        }
        for page in 0..self.template.n_pages() {
            if self.tracker.dirty[page] {
                continue;
            }
            let n = self.page_extent(page);
            // SAFETY: page slot is inside the backing store.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    self.template.page(page).as_ptr(),
                    self.base.add(page * self.page_size()),
                    n,
                );
            }
        }
        self.materialized = true;
    }

    /// Whether [`Self::materialize`] has run.
    pub fn is_materialized(&self) -> bool {
        self.materialized
    }

    /// A complete whole-segment byte view assembled *read-through*:
    /// private pages from the backing store, shared pages from the
    /// template — without materializing, so COW page sharing (and the
    /// dedup audit built on it) survives checkpoint packing.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len];
        if self.len > 0 {
            self.read(0, &mut out);
        }
        out
    }

    /// Read-through bytes of every page written in epoch `since` or
    /// later, as `(page index, page bytes)` pairs (the final page may be
    /// shorter than `page_size`). Mutates nothing — callers advance the
    /// epoch themselves once the capture is durable.
    pub fn delta_pages_since(&self, since: u64) -> Vec<(u32, Vec<u8>)> {
        self.tracker
            .pages_dirty_since(since)
            .map(|page| {
                let n = self.page_extent(page);
                let mut buf = vec![0u8; n];
                self.read(page * self.page_size(), &mut buf);
                (page as u32, buf)
            })
            .collect()
    }

    /// Close the tracker's current write epoch (see
    /// [`DirtyTracker::advance_epoch`]).
    pub fn advance_epoch(&mut self) -> u64 {
        self.tracker.advance_epoch()
    }
}

// SAFETY: a CowSegment is owned by one rank's privatizer; the scheduler
// guarantees the rank's accesses execute on exactly one lane at a time
// (the same discipline VarAccess already relies on).
unsafe impl Send for CowSegment {}

/// Interior-mutable cell around one rank's [`CowSegment`], so `Copy`able
/// access handles can fault pages through a shared pointer.
#[derive(Debug)]
pub struct CowCell(UnsafeCell<CowSegment>);

// SAFETY: see CowSegment — rank-exclusive execution means no concurrent
// access through the cell.
unsafe impl Send for CowCell {}
unsafe impl Sync for CowCell {}

impl CowCell {
    pub fn new(segment: CowSegment) -> CowCell {
        CowCell(UnsafeCell::new(segment))
    }

    /// The wrapped segment.
    ///
    /// # Safety
    /// Caller must guarantee rank-exclusive access: only the owning
    /// rank's lane (or single-threaded runtime bookkeeping like audits
    /// and checkpoint preparation) may hold the reference, and never two
    /// at once.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn segment(&self) -> &mut CowSegment {
        &mut *self.0.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template(len: usize, ps: usize) -> Arc<PageTemplate> {
        let bytes: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        Arc::new(PageTemplate::new(&bytes, ps))
    }

    struct Backing {
        buf: Box<[u8]>,
    }

    fn segment(tpl: &Arc<PageTemplate>) -> (CowSegment, Backing) {
        let mut backing = Backing {
            buf: vec![0u8; tpl.len().max(1)].into_boxed_slice(),
        };
        let seg = unsafe { CowSegment::new(tpl.clone(), backing.buf.as_mut_ptr()) };
        (seg, backing)
    }

    #[test]
    fn template_pads_final_page_and_reads_across_pages() {
        let tpl = template(100, 64);
        assert_eq!(tpl.n_pages(), 2);
        assert_eq!(tpl.len(), 100);
        assert_eq!(tpl.page(1).len(), 64, "pages padded to page_size");
        let mut out = vec![0u8; 40];
        tpl.read(50, &mut out); // spans the page boundary at 64
        let expect: Vec<u8> = (50..90).map(|i| (i % 251) as u8).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn reads_come_from_template_until_first_write() {
        let tpl = template(256, 64);
        let (seg, _b) = segment(&tpl);
        let mut out = vec![0u8; 256];
        seg.read(0, &mut out);
        let expect: Vec<u8> = (0..256).map(|i| (i % 251) as u8).collect();
        assert_eq!(out, expect);
        assert_eq!(seg.tracker().faults(), 0, "reads never fault");
        assert_eq!(seg.resident_private_bytes(), 0);
    }

    #[test]
    fn first_write_faults_the_page_and_preserves_surrounding_bytes() {
        let tpl = template(256, 64);
        let (mut seg, _b) = segment(&tpl);
        let faulted = seg.write(70, &[0xAA, 0xBB]);
        assert_eq!(faulted, vec![1], "write inside page 1 privatizes it");
        assert_eq!(seg.tracker().faults(), 1);
        assert!(seg.tracker().is_dirty(1) && !seg.tracker().is_dirty(0));
        let mut out = vec![0u8; 4];
        seg.read(69, &mut out);
        // byte 69 from the copied template; 70/71 the written values; 72 template
        // bytes 69 and 72 hold the template pattern `i % 251` (= 69, 72 here)
        assert_eq!(out, vec![69u8, 0xAA, 0xBB, 72u8]);
    }

    #[test]
    fn warm_writes_do_not_refault() {
        let tpl = template(256, 64);
        let (mut seg, _b) = segment(&tpl);
        assert_eq!(seg.write(0, &[1]), vec![0]);
        assert_eq!(seg.write(1, &[2]), Vec::<u32>::new());
        assert_eq!(seg.tracker().faults(), 1);
    }

    #[test]
    fn spanning_write_faults_every_covered_page() {
        let tpl = template(256, 64);
        let (mut seg, _b) = segment(&tpl);
        let faulted = seg.write(60, &[7u8; 140]); // pages 0,1,2,3 partially
        assert_eq!(faulted, vec![0, 1, 2, 3]);
        let mut out = vec![0u8; 140];
        seg.read(60, &mut out);
        assert_eq!(out, vec![7u8; 140]);
    }

    #[test]
    fn writable_ptr_faults_covering_pages_and_is_stable() {
        let tpl = template(256, 64);
        let (mut seg, _b) = segment(&tpl);
        let (p, faulted) = seg.writable_ptr(100, 8);
        assert_eq!(faulted, vec![1]);
        unsafe { p.write(0xCD) };
        let mut out = [0u8; 1];
        seg.read(100, &mut out);
        assert_eq!(out[0], 0xCD);
        let (p2, faulted2) = seg.writable_ptr(100, 8);
        assert_eq!(p, p2);
        assert!(faulted2.is_empty());
    }

    #[test]
    fn materialize_is_sticky_and_matches_eager_copy() {
        let tpl = template(300, 64);
        let (mut seg, b) = segment(&tpl);
        seg.write(10, &[9, 9, 9]);
        seg.materialize();
        assert!(seg.is_materialized());
        // The backing store now equals an eager copy with the write applied.
        let mut eager: Vec<u8> = (0..300).map(|i| (i % 251) as u8).collect();
        eager[10..13].copy_from_slice(&[9, 9, 9]);
        assert_eq!(&b.buf[..300], &eager[..]);
        // Sticky: external mutation of a shared page survives a re-call.
        let corrupted = b.buf[200];
        unsafe { seg.base().add(200).write(corrupted.wrapping_add(1)) };
        seg.materialize();
        assert_eq!(b.buf[200], corrupted.wrapping_add(1));
        // Materialization is not divergence.
        assert_eq!(seg.tracker().dirty_count(), 1);
        assert_eq!(seg.tracker().faults(), 1);
    }

    #[test]
    fn epoch_stamps_track_writes_per_checkpoint_epoch() {
        let tpl = template(512, 64);
        let (mut seg, _b) = segment(&tpl);
        assert_eq!(seg.tracker().epoch(), 1);
        seg.write(0, &[1]); // page 0, epoch 1
        seg.write(130, &[1]); // page 2, epoch 1
        let e1: Vec<usize> = seg.tracker().pages_dirty_since(1).collect();
        assert_eq!(e1, vec![0, 2]);
        assert_eq!(seg.advance_epoch(), 2);
        // nothing written in epoch 2 yet
        assert_eq!(seg.tracker().pages_dirty_since(2).count(), 0);
        // a warm write to an already-private page re-stamps it
        seg.write(1, &[9]);
        let e2: Vec<usize> = seg.tracker().pages_dirty_since(2).collect();
        assert_eq!(e2, vec![0], "warm write must dirty the page in the new epoch");
        // the ever-dirty floor still sees both pages
        let all: Vec<usize> = seg.tracker().pages_dirty_since(1).collect();
        assert_eq!(all, vec![0, 2]);
        assert_eq!(seg.tracker().page_epoch(2), 1);
        assert_eq!(seg.tracker().page_epoch(0), 2);
        assert_eq!(seg.tracker().page_epoch(7), 0, "never-written page has epoch 0");
    }

    #[test]
    fn writable_ptr_stamps_covered_pages() {
        let tpl = template(256, 64);
        let (mut seg, _b) = segment(&tpl);
        seg.write(0, &[1]);
        seg.advance_epoch();
        let (_p, faulted) = seg.writable_ptr(0, 8);
        assert!(faulted.is_empty(), "warm pointer grant must not refault");
        let e2: Vec<usize> = seg.tracker().pages_dirty_since(2).collect();
        assert_eq!(e2, vec![0], "pointer grant conservatively re-stamps");
    }

    #[test]
    fn snapshot_reads_through_without_materializing() {
        let tpl = template(300, 64);
        let (mut seg, b) = segment(&tpl);
        seg.write(10, &[9, 9, 9]);
        let snap = seg.snapshot();
        let mut eager: Vec<u8> = (0..300).map(|i| (i % 251) as u8).collect();
        eager[10..13].copy_from_slice(&[9, 9, 9]);
        assert_eq!(snap, eager, "snapshot == eager copy with writes applied");
        assert!(!seg.is_materialized(), "snapshot must not materialize");
        // shared pages of the backing store stay untouched (still zero)
        assert_eq!(b.buf[128], 0, "shared page slots must stay untouched");
        assert_eq!(seg.tracker().dirty_count(), 1);
    }

    #[test]
    fn delta_pages_since_returns_read_through_page_bytes() {
        let tpl = template(300, 64); // 5 pages, last extent 44
        let (mut seg, _b) = segment(&tpl);
        seg.write(290, &[5, 5]); // page 4 (partial extent)
        seg.advance_epoch();
        seg.write(70, &[7]); // page 1, epoch 2
        let delta = seg.delta_pages_since(2);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].0, 1);
        assert_eq!(delta[0].1.len(), 64);
        assert_eq!(delta[0].1[6], 7);
        let full = seg.delta_pages_since(1);
        assert_eq!(full.len(), 2);
        assert_eq!(full[1].0, 4);
        assert_eq!(full[1].1.len(), 44, "final page trimmed to extent");
        assert_eq!(full[1].1[34..36], [5, 5]);
    }

    #[test]
    fn dirty_tracker_enumerates_pages() {
        let tpl = template(512, 64);
        let (mut seg, _b) = segment(&tpl);
        seg.write(0, &[1]);
        seg.write(130, &[1]);
        seg.write(500, &[1]);
        let dirty: Vec<usize> = seg.tracker().dirty_pages().collect();
        assert_eq!(dirty, vec![0, 2, 7]);
        assert_eq!(seg.tracker().dirty_count(), 3);
        assert_eq!(seg.resident_private_bytes(), 3 * 64);
    }
}
