//! A loaded instance of a program binary: segments in memory.
//!
//! Loading mirrors what `ld.so` does for a PIE shared object:
//!
//! 1. map the code segment (here: a pinned [`Region`] filled with a NOP
//!    pattern — the bytes are opaque, only addresses and sizes matter),
//! 2. map the data segment right after it conceptually, initialize
//!    `.data` from the binary and zero `.bss`,
//! 3. build the GOT: one absolute address per extern-visible global and
//!    per function,
//! 4. record the TLS initialization template,
//! 5. run C++ static constructors — which may heap-allocate and store
//!    data/function pointers into globals *before any privatization can
//!    intercept them* (the PIEglobals hazard of §3.3).
//!
//! Every pointer the loader or the ctors store is also recorded as a
//! [`Reloc`], which is the ground truth the `ScanPolicy::Relocations`
//! fixup strategy uses (the "more robust method unaffected by false
//! positives" the paper plans); the conservative memory scan strategy
//! deliberately ignores these records and re-discovers pointers by range
//! matching, exactly like the shipping implementation.

use crate::binary::ProgramBinary;
use crate::loader::NamespaceId;
use crate::spec::{Callable, VarClass};
use pvr_isomalloc::{Region, RegionKind};
use std::sync::Arc;

/// What `dl_iterate_phdr` reports for one loaded object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentAddrs {
    pub code_base: usize,
    pub code_len: usize,
    pub data_base: usize,
    pub data_len: usize,
}

impl SegmentAddrs {
    pub fn contains_code(&self, addr: usize) -> bool {
        addr >= self.code_base && addr < self.code_base + self.code_len
    }

    pub fn contains_data(&self, addr: usize) -> bool {
        addr >= self.data_base && addr < self.data_base + self.data_len
    }
}

/// A heap allocation made by a static constructor at load time.
pub struct CtorHeapAlloc {
    buf: Box<[u8]>,
}

impl CtorHeapAlloc {
    pub fn base(&self) -> usize {
        self.buf.as_ptr() as usize
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Where a stored pointer points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelocTarget {
    /// Into the code segment (function pointer / vtable slot).
    Code { offset: usize },
    /// Into the data segment (global-to-global pointer).
    Data { offset: usize },
    /// Into a constructor heap allocation.
    CtorHeap { alloc: usize, offset: usize },
}

/// Record of a pointer-sized value stored into the data segment whose
/// value is an address (i.e. would need rebasing if the segments move).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reloc {
    /// Byte offset within the data segment where the pointer lives.
    pub data_offset: usize,
    pub target: RelocTarget,
}

/// An in-memory instance of a program binary.
pub struct LoadedImage {
    pub binary: Arc<ProgramBinary>,
    code: Region,
    data: Region,
    /// The Global Offset Table: absolute addresses, one per GOT slot.
    got: Box<[u64]>,
    tls_template: Vec<u8>,
    ctor_heap: Vec<CtorHeapAlloc>,
    relocs: Vec<Reloc>,
    namespace: NamespaceId,
}

impl LoadedImage {
    /// Load `binary` into memory (the `dlopen` work).
    pub fn load(binary: Arc<ProgramBinary>, namespace: NamespaceId) -> LoadedImage {
        let layout = &binary.layout;

        // 1. code segment: opaque bytes; 0x90 = x86 NOP, a nod to realism.
        let code = Region::new_zeroed(RegionKind::CodeSegment, layout.code_size);
        unsafe {
            std::ptr::write_bytes(code.base_mut(), 0x90, layout.code_size);
        }

        // 2. data segment: .data inits + zeroed .bss.
        let mut data = Region::new_zeroed(RegionKind::DataSegment, layout.data_size);
        for (name, sym) in &layout.data_syms {
            let var = binary.spec.var(name).expect("layout/spec symbol mismatch");
            let init_len = var.init.len().min(sym.size);
            data.as_mut_slice()[sym.offset..sym.offset + init_len]
                .copy_from_slice(&var.init[..init_len]);
        }

        // 3. the GOT.
        let code_base = code.base() as u64;
        let data_base = data.base() as u64;
        let mut got = vec![0u64; layout.got_len].into_boxed_slice();
        for (name, &slot) in &layout.got_slots {
            got[slot] = data_base + layout.data_syms[name].offset as u64;
        }
        for (name, &slot) in &layout.got_fn_slots {
            got[slot] = code_base + layout.fn_syms[name].offset as u64;
        }

        // 4. TLS template.
        let mut tls_template = vec![0u8; layout.tls_size];
        for (name, sym) in &layout.tls_syms {
            let var = binary.spec.var(name).expect("layout/spec symbol mismatch");
            let init_len = var.init.len().min(sym.size);
            tls_template[sym.offset..sym.offset + init_len]
                .copy_from_slice(&var.init[..init_len]);
        }

        let mut img = LoadedImage {
            binary,
            code,
            data,
            got,
            tls_template,
            ctor_heap: Vec::new(),
            relocs: Vec::new(),
            namespace,
        };

        // 5. static constructors run as part of dlopen.
        img.run_ctors();
        img
    }

    fn run_ctors(&mut self) {
        let binary = self.binary.clone();
        let layout = &binary.layout;
        let code_base = self.code.base() as u64;
        let data_base = self.data.base() as u64;

        for ctor in &binary.spec.ctors {
            // heap allocations + pointers to them
            for (i, (&bytes, global)) in ctor
                .heap_allocs
                .iter()
                .zip(&ctor.store_ptr_into)
                .enumerate()
            {
                let fill = (self.ctor_heap.len() as u8).wrapping_add(i as u8);
                let buf = vec![fill; bytes].into_boxed_slice();
                let addr = buf.as_ptr() as u64;
                let alloc_index = self.ctor_heap.len();
                self.ctor_heap.push(CtorHeapAlloc { buf });
                let sym = layout
                    .data_syms
                    .get(global)
                    .unwrap_or_else(|| panic!("ctor target `{global}` not a data symbol"));
                assert!(sym.size >= 8, "pointer target must be >= 8 bytes");
                self.write_data_u64(sym.offset, addr);
                self.relocs.push(Reloc {
                    data_offset: sym.offset,
                    target: RelocTarget::CtorHeap {
                        alloc: alloc_index,
                        offset: 0,
                    },
                });
            }
            // function pointers (vtable-slot model)
            for (global, func) in &ctor.store_fn_ptr_into {
                let gsym = layout.data_syms[global.as_str()];
                let fsym = layout.fn_syms[func.as_str()];
                self.write_data_u64(gsym.offset, code_base + fsym.offset as u64);
                self.relocs.push(Reloc {
                    data_offset: gsym.offset,
                    target: RelocTarget::Code {
                        offset: fsym.offset,
                    },
                });
            }
            // data-to-data pointers
            for (dst, src) in &ctor.store_data_ptr_into {
                let dsym = layout.data_syms[dst.as_str()];
                let ssym = layout.data_syms[src.as_str()];
                self.write_data_u64(dsym.offset, data_base + ssym.offset as u64);
                self.relocs.push(Reloc {
                    data_offset: dsym.offset,
                    target: RelocTarget::Data {
                        offset: ssym.offset,
                    },
                });
            }
        }
    }

    fn write_data_u64(&mut self, offset: usize, v: u64) {
        self.data.as_mut_slice()[offset..offset + 8].copy_from_slice(&v.to_le_bytes());
    }

    pub fn namespace(&self) -> NamespaceId {
        self.namespace
    }

    /// Absolute address of a Global/Static variable in this image's data
    /// segment.
    pub fn data_addr_of(&self, name: &str) -> Option<*mut u8> {
        let sym = self.binary.layout.data_syms.get(name)?;
        Some(unsafe { self.data.base_mut().add(sym.offset) })
    }

    /// Offset of a ThreadLocal variable within the TLS block.
    pub fn tls_offset_of(&self, name: &str) -> Option<usize> {
        Some(self.binary.layout.tls_syms.get(name)?.offset)
    }

    /// Absolute "address" of a function in this image's code segment.
    pub fn fn_addr_of(&self, name: &str) -> Option<usize> {
        let sym = self.binary.layout.fn_syms.get(name)?;
        Some(self.code.base() as usize + sym.offset)
    }

    /// Reverse lookup: which function contains this code address?
    pub fn fn_at_addr(&self, addr: usize) -> Option<(&str, usize)> {
        let base = self.code.base() as usize;
        if addr < base || addr >= base + self.code.len() {
            return None;
        }
        let offset = addr - base;
        self.binary
            .layout
            .fn_syms
            .iter()
            .find(|(_, s)| offset >= s.offset && offset < s.offset + s.size)
            .map(|(n, s)| (n.as_str(), offset - s.offset))
    }

    /// The callable behavior registered for the function at `code_offset`
    /// (used to apply `MPI_Op`s resolved via image base + offset).
    pub fn callable_at_offset(&self, code_offset: usize) -> Option<Callable> {
        let (name, _) = self
            .binary
            .layout
            .fn_syms
            .iter()
            .find(|(_, s)| code_offset >= s.offset && code_offset < s.offset + s.size)
            .map(|(n, s)| (n.clone(), s))?;
        self.binary.spec.function(&name)?.callable.clone()
    }

    pub fn segment_addrs(&self) -> SegmentAddrs {
        SegmentAddrs {
            code_base: self.code.base() as usize,
            code_len: self.code.len(),
            data_base: self.data.base() as usize,
            data_len: self.data.len(),
        }
    }

    pub fn code_region(&self) -> &Region {
        &self.code
    }

    pub fn data_region(&self) -> &Region {
        &self.data
    }

    pub fn got(&self) -> &[u64] {
        &self.got
    }

    pub fn got_slot_of(&self, name: &str) -> Option<usize> {
        self.binary.layout.got_slots.get(name).copied()
    }

    pub fn tls_template(&self) -> &[u8] {
        &self.tls_template
    }

    pub fn relocs(&self) -> &[Reloc] {
        &self.relocs
    }

    pub fn ctor_heap(&self) -> &[CtorHeapAlloc] {
        &self.ctor_heap
    }

    /// Read a Global/Static as a little-endian u64 (test/debug helper).
    pub fn read_data_u64(&self, name: &str) -> Option<u64> {
        let sym = self.binary.layout.data_syms.get(name)?;
        let bytes = &self.data.as_slice()[sym.offset..sym.offset + 8];
        Some(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    /// All mutable data symbols, for privatization methods that must
    /// enumerate what to privatize.
    pub fn data_symbols(&self) -> impl Iterator<Item = (&String, &crate::binary::SymbolOffset)> {
        self.binary.layout.data_syms.iter()
    }

    /// Whether a variable is a Static (not reachable through the GOT).
    pub fn is_static_var(&self, name: &str) -> bool {
        self.binary
            .spec
            .var(name)
            .map(|v| v.class == VarClass::Static)
            .unwrap_or(false)
    }
}

impl std::fmt::Debug for LoadedImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadedImage")
            .field("binary", &self.binary.path)
            .field("namespace", &self.namespace)
            .field("segments", &self.segment_addrs())
            .field("relocs", &self.relocs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::link;
    use crate::spec::{CtorSpec, FunctionSpec, GlobalSpec, ImageSpec, VarClass};

    fn sample_image() -> LoadedImage {
        let spec = ImageSpec::builder("img")
            .var(GlobalSpec::new("counter", 8, VarClass::Global).with_init(&42u64.to_le_bytes()))
            .global("vtable_slot", 8)
            .global("heap_ptr", 8)
            .global("link_ptr", 8)
            .static_var("hidden", 8)
            .thread_local("scratch", 8)
            .function(FunctionSpec::new("combine", 256))
            .ctor(
                CtorSpec::new("init")
                    .alloc_into(128, "heap_ptr")
                    .fn_ptr_into("vtable_slot", "combine")
                    .data_ptr_into("link_ptr", "counter"),
            )
            .code_padding(4096)
            .build();
        LoadedImage::load(link(spec), NamespaceId::BASE)
    }

    #[test]
    fn data_initialized() {
        let img = sample_image();
        assert_eq!(img.read_data_u64("counter"), Some(42));
        assert_eq!(img.read_data_u64("hidden"), Some(0));
    }

    #[test]
    fn got_points_into_segments() {
        let img = sample_image();
        let seg = img.segment_addrs();
        let slot = img.got_slot_of("counter").unwrap();
        let addr = img.got()[slot] as usize;
        assert!(seg.contains_data(addr));
        assert_eq!(addr, img.data_addr_of("counter").unwrap() as usize);
        // statics have no GOT slot
        assert!(img.got_slot_of("hidden").is_none());
    }

    #[test]
    fn ctor_effects_recorded_as_relocs() {
        let img = sample_image();
        assert_eq!(img.relocs().len(), 3);
        let seg = img.segment_addrs();
        // vtable slot holds a code address
        let v = img.read_data_u64("vtable_slot").unwrap() as usize;
        assert!(seg.contains_code(v));
        assert_eq!(v, img.fn_addr_of("combine").unwrap());
        // heap_ptr holds a ctor-heap address
        let h = img.read_data_u64("heap_ptr").unwrap() as usize;
        assert_eq!(h, img.ctor_heap()[0].base());
        assert_eq!(img.ctor_heap()[0].len(), 128);
        // link_ptr points at counter
        let l = img.read_data_u64("link_ptr").unwrap() as usize;
        assert_eq!(l, img.data_addr_of("counter").unwrap() as usize);
    }

    #[test]
    fn two_loads_have_disjoint_segments() {
        let spec = ImageSpec::builder("x").global("g", 8).build();
        let bin = link(spec);
        let a = LoadedImage::load(bin.clone(), NamespaceId::BASE);
        let b = LoadedImage::load(bin, NamespaceId(1));
        let sa = a.segment_addrs();
        let sb = b.segment_addrs();
        assert!(!sa.contains_data(sb.data_base));
        assert!(!sa.contains_code(sb.code_base));
        // writing one does not affect the other
        unsafe {
            *(a.data_addr_of("g").unwrap() as *mut u64) = 7;
        }
        assert_eq!(b.read_data_u64("g"), Some(0));
        assert_eq!(a.read_data_u64("g"), Some(7));
    }

    #[test]
    fn fn_reverse_lookup() {
        let img = sample_image();
        let addr = img.fn_addr_of("combine").unwrap();
        assert_eq!(img.fn_at_addr(addr), Some(("combine", 0)));
        assert_eq!(img.fn_at_addr(addr + 10), Some(("combine", 10)));
        assert_eq!(img.fn_at_addr(addr + 50_000), None);
    }

    #[test]
    fn tls_template_has_inits() {
        let spec = ImageSpec::builder("tls")
            .var(
                GlobalSpec::new("tl", 8, VarClass::ThreadLocal)
                    .with_init(&99u64.to_le_bytes()),
            )
            .build();
        let img = LoadedImage::load(link(spec), NamespaceId::BASE);
        assert_eq!(img.tls_template().len(), 8);
        assert_eq!(
            u64::from_le_bytes(img.tls_template()[..8].try_into().unwrap()),
            99
        );
        assert_eq!(img.tls_offset_of("tl"), Some(0));
    }
}
