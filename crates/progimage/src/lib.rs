//! # pvr-progimage — simulated PIE program images and dynamic loading
//!
//! The three privatization methods contributed by the paper (PIPglobals,
//! FSglobals, PIEglobals) all work by building the application as a
//! **Position Independent Executable** and duplicating its code and data
//! segments once per virtual rank. The mechanisms they manipulate are ELF
//! and glibc artifacts: program headers, the Global Offset Table, TLS
//! templates, `dlopen`/`dlmopen`/`dlsym`/`dl_iterate_phdr`, linker
//! namespaces, and the shared filesystem.
//!
//! Reproducing that literally requires glibc internals this sandbox (and
//! safe Rust) cannot reach, so this crate models the artifacts explicitly
//! — faithfully enough that every decision point the paper describes is
//! exercised by real code:
//!
//! * [`spec::ImageSpec`] — the "source program": its global variables,
//!   function-local statics, `thread_local` variables, functions, C++
//!   static constructors, and total code size. Apps in `pvr-apps` declare
//!   their globals here instead of as Rust `static`s.
//! * [`binary::ProgramBinary`] — the "linked binary on disk": a segment
//!   layout assigning every symbol an offset, plus the file's byte size
//!   (real ADCIRC is ~14 MB of code; Jacobi-3D ~3 MB — both used by the
//!   Fig. 5/8 experiments).
//! * [`image::LoadedImage`] — an in-memory instance produced by the
//!   loader: pinned code and data segment regions, a GOT of absolute
//!   addresses, an initialized TLS template, relocation records, and the
//!   heap allocations made by static constructors (the pointer-fixup
//!   hazard PIEglobals must handle).
//! * [`loader::DynLoader`] — `dlopen`/`dlmopen` with linker namespaces,
//!   including glibc's hard namespace cap that limits PIPglobals without a
//!   patched glibc, `dlsym`, and a `dl_iterate_phdr` equivalent.
//! * [`sharedfs::SharedFs`] — a shared-filesystem model with a
//!   latency/bandwidth cost accounting used by FSglobals' startup.
//!
//! The privatization strategies themselves live in `pvr-privatize`; this
//! crate only provides the substrate they manipulate.

pub mod binary;
pub mod image;
pub mod loader;
pub mod pages;
pub mod sharedfs;
pub mod spec;

pub use binary::{link, ProgramBinary, SegmentLayout, SymbolOffset};
pub use image::{CtorHeapAlloc, LoadedImage, Reloc, RelocTarget, SegmentAddrs};
pub use loader::{DlAddrInfo, DlError, DynLoader, Namespace, NamespaceId, PhdrInfo};
pub use pages::{CowCell, CowSegment, DirtyTracker, PageTemplate, DEFAULT_PAGE_SIZE};
pub use sharedfs::{FsError, FsCostModel, SharedFs};
pub use spec::{
    CtorSpec, FunctionSpec, GlobalSpec, ImageSpec, ImageSpecBuilder, Language, Mutability,
    VarClass,
};
