//! "Linking": turning an [`ImageSpec`] into an on-disk program binary with
//! a concrete segment layout.
//!
//! PIE binaries access global data IP-relatively and place the data
//! segment immediately after the code segment — the property PIPglobals /
//! FSglobals / PIEglobals all exploit ("as soon as execution jumps into
//! the PIE binary, any global variables referenced within it appear
//! privatized"). The layout computed here fixes, once per program, the
//! offset of every symbol; every loaded instance of the binary places the
//! same symbol at `segment_base + offset`.

use crate::spec::{ImageSpec, VarClass};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Offset of a symbol within its segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolOffset {
    pub offset: usize,
    pub size: usize,
    pub class: VarClass,
    /// Index into `ImageSpec::vars` (or `functions` for function symbols).
    pub index: usize,
}

/// Concrete layout of the binary's segments.
#[derive(Debug, Clone)]
pub struct SegmentLayout {
    /// Data-segment offsets for Global and Static variables.
    pub data_syms: HashMap<String, SymbolOffset>,
    /// TLS-template offsets for ThreadLocal variables.
    pub tls_syms: HashMap<String, SymbolOffset>,
    /// Code-segment offsets for functions.
    pub fn_syms: HashMap<String, SymbolOffset>,
    pub data_size: usize,
    pub tls_size: usize,
    pub code_size: usize,
    /// GOT slot index for each Global (NOT Static — statics bypass the
    /// GOT, which is precisely why Swapglobals cannot privatize them).
    pub got_slots: HashMap<String, usize>,
    /// GOT slots for functions (indirect calls).
    pub got_fn_slots: HashMap<String, usize>,
    pub got_len: usize,
}

fn align_up(x: usize, a: usize) -> usize {
    (x + a - 1) & !(a - 1)
}

/// A linked program binary — the artifact `dlopen` operates on.
///
/// Identity matters: the loader refuses to load *the same file* twice into
/// one namespace (returning the existing handle, as `dlopen` does), which
/// is why FSglobals must create distinct file copies per rank.
pub struct ProgramBinary {
    pub spec: Arc<ImageSpec>,
    pub layout: SegmentLayout,
    /// Unique identity of this "file" (distinct copies ⇒ distinct ids).
    file_id: u64,
    /// Path-like label for diagnostics.
    pub path: String,
}

static NEXT_FILE_ID: AtomicU64 = AtomicU64::new(1);

impl ProgramBinary {
    pub fn file_id(&self) -> u64 {
        self.file_id
    }

    /// Size of the binary file on disk: code + initialized data + headers.
    /// (What FSglobals must copy per rank.)
    pub fn file_size(&self) -> usize {
        // ELF headers + symbol/reloc tables, coarsely.
        let headers = 4096 + 64 * (self.spec.vars.len() + self.spec.functions.len());
        self.layout.code_size + self.layout.data_size + self.layout.tls_size + headers
    }

    /// Produce a copy of this binary with a new file identity (the
    /// FSglobals `cp` operation).
    pub fn copy_as(&self, path: &str) -> Arc<ProgramBinary> {
        Arc::new(ProgramBinary {
            spec: self.spec.clone(),
            layout: self.layout.clone(),
            file_id: NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed),
            path: path.to_string(),
        })
    }
}

impl std::fmt::Debug for ProgramBinary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramBinary")
            .field("name", &self.spec.name)
            .field("path", &self.path)
            .field("file_id", &self.file_id)
            .field("code_size", &self.layout.code_size)
            .field("data_size", &self.layout.data_size)
            .finish()
    }
}

/// Link an [`ImageSpec`] into a [`ProgramBinary`].
pub fn link(spec: ImageSpec) -> Arc<ProgramBinary> {
    let spec = Arc::new(spec);
    let mut data_syms = HashMap::new();
    let mut tls_syms = HashMap::new();
    let mut fn_syms = HashMap::new();
    let mut got_slots = HashMap::new();
    let mut got_fn_slots = HashMap::new();

    let mut data_off = 0usize;
    let mut tls_off = 0usize;
    let mut got_len = 0usize;

    for (index, v) in spec.vars.iter().enumerate() {
        match v.class {
            VarClass::Global | VarClass::Static => {
                data_off = align_up(data_off, v.align);
                data_syms.insert(
                    v.name.clone(),
                    SymbolOffset {
                        offset: data_off,
                        size: v.size,
                        class: v.class,
                        index,
                    },
                );
                data_off += v.size;
                if v.class == VarClass::Global {
                    got_slots.insert(v.name.clone(), got_len);
                    got_len += 1;
                }
            }
            VarClass::ThreadLocal => {
                tls_off = align_up(tls_off, v.align);
                tls_syms.insert(
                    v.name.clone(),
                    SymbolOffset {
                        offset: tls_off,
                        size: v.size,
                        class: v.class,
                        index,
                    },
                );
                tls_off += v.size;
            }
        }
    }

    // Functions: laid out in declaration order, 16-byte aligned, then the
    // opaque code padding.
    let mut code_off = 0usize;
    for (index, f) in spec.functions.iter().enumerate() {
        code_off = align_up(code_off, 16);
        fn_syms.insert(
            f.name.clone(),
            SymbolOffset {
                offset: code_off,
                size: f.code_size,
                class: VarClass::Global,
                index,
            },
        );
        got_fn_slots.insert(f.name.clone(), got_len);
        got_len += 1;
        code_off += f.code_size;
    }
    code_off += spec.code_padding;

    let layout = SegmentLayout {
        data_syms,
        tls_syms,
        fn_syms,
        data_size: align_up(data_off.max(8), 8),
        tls_size: align_up(tls_off, 8),
        code_size: align_up(code_off.max(16), 16),
        got_slots,
        got_fn_slots,
        got_len,
    };

    let path = format!("/build/{}", spec.name);
    Arc::new(ProgramBinary {
        spec,
        layout,
        file_id: NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed),
        path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FunctionSpec, GlobalSpec, ImageSpec, VarClass};

    fn sample() -> Arc<ProgramBinary> {
        link(
            ImageSpec::builder("t")
                .global("a", 4)
                .global("b", 8)
                .static_var("s", 4)
                .thread_local("t1", 16)
                .function(FunctionSpec::new("f", 100))
                .function(FunctionSpec::new("g", 50))
                .code_padding(1000)
                .build(),
        )
    }

    #[test]
    fn symbols_do_not_overlap() {
        let b = sample();
        let mut spans: Vec<(usize, usize)> = b
            .layout
            .data_syms
            .values()
            .map(|s| (s.offset, s.offset + s.size))
            .collect();
        spans.sort();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0);
        }
        assert!(b.layout.data_size >= spans.last().unwrap().1);
    }

    #[test]
    fn alignment_honored() {
        let b = link(
            ImageSpec::builder("t")
                .var(GlobalSpec::new("c1", 1, VarClass::Global))
                .var(GlobalSpec::new("d8", 8, VarClass::Global))
                .build(),
        );
        let d8 = b.layout.data_syms["d8"];
        assert_eq!(d8.offset % 8, 0);
    }

    #[test]
    fn statics_have_no_got_slot() {
        let b = sample();
        assert!(b.layout.got_slots.contains_key("a"));
        assert!(b.layout.got_slots.contains_key("b"));
        assert!(!b.layout.got_slots.contains_key("s"));
        assert!(b.layout.got_fn_slots.contains_key("f"));
        assert_eq!(b.layout.got_len, 4); // a, b, f, g
    }

    #[test]
    fn tls_separate_from_data() {
        let b = sample();
        assert!(b.layout.tls_syms.contains_key("t1"));
        assert!(!b.layout.data_syms.contains_key("t1"));
        assert_eq!(b.layout.tls_size, 16);
    }

    #[test]
    fn functions_laid_out_and_padded() {
        let b = sample();
        let f = b.layout.fn_syms["f"];
        let g = b.layout.fn_syms["g"];
        assert_eq!(f.offset, 0);
        assert_eq!(g.offset % 16, 0);
        assert!(g.offset >= f.offset + f.size);
        assert!(b.layout.code_size >= g.offset + g.size + 1000);
    }

    #[test]
    fn copies_get_fresh_identity() {
        let b = sample();
        let c = b.copy_as("/fs/copy0");
        assert_ne!(b.file_id(), c.file_id());
        assert_eq!(b.layout.data_size, c.layout.data_size);
        assert_eq!(c.path, "/fs/copy0");
    }

    #[test]
    fn file_size_includes_code_and_data() {
        let b = sample();
        assert!(b.file_size() > b.layout.code_size + b.layout.data_size);
    }
}
