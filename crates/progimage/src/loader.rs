//! Dynamic-loader simulator: `dlopen` / `dlmopen` / `dlsym` /
//! `dl_iterate_phdr` with linker namespaces.
//!
//! glibc's `dlmopen(LM_ID_NEWLM, ...)` loads an object into a fresh linker
//! namespace, duplicating its code and data segments — the mechanism
//! Process-in-Process and PIPglobals rely on for privatization. glibc caps
//! the number of namespaces at a small compile-time constant (`DL_NNS` =
//! 16, several of which are unusable in practice), which is why PIP ships
//! a patched glibc and why PIPglobals "cannot support high degrees of
//! virtualization" without it. The default limit here is 12 usable
//! dlmopen namespaces; [`DynLoader::with_patched_glibc`] lifts it.

use crate::binary::ProgramBinary;
use crate::image::{LoadedImage, SegmentAddrs};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A linker namespace index (`Lmid_t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NamespaceId(pub usize);

impl NamespaceId {
    /// `LM_ID_BASE` — the application's initial namespace.
    pub const BASE: NamespaceId = NamespaceId(0);
}

/// One linker namespace and the objects loaded into it.
#[derive(Debug, Default)]
pub struct Namespace {
    /// file_id → image (dlopen of an already-loaded file returns the
    /// existing image, like the real refcounted dlopen).
    images: HashMap<u64, Arc<LoadedImage>>,
}

/// Errors from the loader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DlError {
    /// `dlmopen` failed: all namespaces in use (unpatched glibc limit).
    NamespaceExhausted { limit: usize },
    /// The binary was not compiled as a Position Independent Executable;
    /// the runtime privatization methods cannot duplicate its segments.
    NotPie { binary: String },
    /// `dlsym` could not resolve the name.
    NoSuchSymbol { name: String },
}

impl fmt::Display for DlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlError::NamespaceExhausted { limit } => write!(
                f,
                "dlmopen: maximum number of linker namespaces exhausted (limit {limit}; \
                 a patched glibc raises this)"
            ),
            DlError::NotPie { binary } => {
                write!(f, "{binary}: not compiled as a Position Independent Executable")
            }
            DlError::NoSuchSymbol { name } => write!(f, "dlsym: undefined symbol {name}"),
        }
    }
}

impl std::error::Error for DlError {}

/// What `dl_iterate_phdr` reports per loaded object.
#[derive(Debug, Clone)]
pub struct PhdrInfo {
    pub path: String,
    pub file_id: u64,
    pub namespace: NamespaceId,
    pub segments: SegmentAddrs,
}

/// glibc's `DL_NNS`.
pub const GLIBC_DL_NNS: usize = 16;
/// Namespaces usable by `dlmopen(LM_ID_NEWLM)` on an unpatched glibc —
/// the base namespace and internal uses consume the rest; the paper (and
/// the PiP project) report ~12 usable virtualized entities per process.
pub const GLIBC_USABLE_NAMESPACES: usize = 12;

/// The per-OS-process dynamic loader state.
pub struct DynLoader {
    namespaces: Vec<Namespace>,
    /// Max *additional* namespaces creatable via dlmopen.
    max_dlmopen_namespaces: usize,
    patched_glibc: bool,
}

impl DynLoader {
    /// A loader with stock-glibc limits.
    pub fn new() -> DynLoader {
        DynLoader {
            namespaces: vec![Namespace::default()], // LM_ID_BASE
            max_dlmopen_namespaces: GLIBC_USABLE_NAMESPACES,
            patched_glibc: false,
        }
    }

    /// A loader with PiP's patched glibc (effectively unbounded
    /// namespaces; PiP ships a glibc built with a large `DL_NNS`).
    pub fn with_patched_glibc() -> DynLoader {
        DynLoader {
            namespaces: vec![Namespace::default()],
            max_dlmopen_namespaces: 1 << 16,
            patched_glibc: true,
        }
    }

    pub fn is_patched_glibc(&self) -> bool {
        self.patched_glibc
    }

    /// Remaining `dlmopen` capacity.
    pub fn namespaces_remaining(&self) -> usize {
        self.max_dlmopen_namespaces - (self.namespaces.len() - 1)
    }

    pub fn namespaces_in_use(&self) -> usize {
        self.namespaces.len()
    }

    /// `dlopen(path, RTLD_NOW)` into the base namespace. Re-opening the
    /// same file returns the already-loaded image (refcount semantics).
    pub fn dlopen(&mut self, binary: &Arc<ProgramBinary>) -> Result<Arc<LoadedImage>, DlError> {
        self.dlopen_in(binary, NamespaceId::BASE)
    }

    /// `dlopen` into a specific existing namespace.
    pub fn dlopen_in(
        &mut self,
        binary: &Arc<ProgramBinary>,
        ns: NamespaceId,
    ) -> Result<Arc<LoadedImage>, DlError> {
        if !binary.spec.pie {
            return Err(DlError::NotPie {
                binary: binary.path.clone(),
            });
        }
        let namespace = &mut self.namespaces[ns.0];
        if let Some(existing) = namespace.images.get(&binary.file_id()) {
            return Ok(existing.clone());
        }
        let img = Arc::new(LoadedImage::load(binary.clone(), ns));
        namespace.images.insert(binary.file_id(), img.clone());
        Ok(img)
    }

    /// `dlmopen(LM_ID_NEWLM, path, RTLD_NOW)`: load into a *fresh*
    /// namespace, duplicating all segments. Fails when the namespace
    /// budget is exhausted (unpatched glibc).
    pub fn dlmopen_newlm(
        &mut self,
        binary: &Arc<ProgramBinary>,
    ) -> Result<Arc<LoadedImage>, DlError> {
        if !binary.spec.pie {
            return Err(DlError::NotPie {
                binary: binary.path.clone(),
            });
        }
        if self.namespaces.len() > self.max_dlmopen_namespaces {
            return Err(DlError::NamespaceExhausted {
                limit: self.max_dlmopen_namespaces,
            });
        }
        let ns = NamespaceId(self.namespaces.len());
        self.namespaces.push(Namespace::default());
        self.dlopen_in(binary, ns)
    }

    /// `dlsym`: resolve a function or data symbol in a loaded image.
    pub fn dlsym(&self, image: &LoadedImage, name: &str) -> Result<usize, DlError> {
        if let Some(addr) = image.fn_addr_of(name) {
            return Ok(addr);
        }
        if let Some(addr) = image.data_addr_of(name) {
            return Ok(addr as usize);
        }
        Err(DlError::NoSuchSymbol {
            name: name.to_string(),
        })
    }

    /// `dl_iterate_phdr`: enumerate every loaded object's segments.
    /// PIEglobals calls this before and after its `dlopen` and diffs the
    /// two listings to find the new binary's code and data segments.
    pub fn dl_iterate_phdr(&self, mut f: impl FnMut(&PhdrInfo)) {
        for (ns_idx, ns) in self.namespaces.iter().enumerate() {
            for img in ns.images.values() {
                f(&PhdrInfo {
                    path: img.binary.path.clone(),
                    file_id: img.binary.file_id(),
                    namespace: NamespaceId(ns_idx),
                    segments: img.segment_addrs(),
                });
            }
        }
    }

    /// Snapshot of currently loaded (file_id, namespace) pairs — the
    /// "before" listing for PIEglobals' diffing.
    pub fn phdr_snapshot(&self) -> Vec<(u64, NamespaceId)> {
        let mut v = Vec::new();
        self.dl_iterate_phdr(|info| v.push((info.file_id, info.namespace)));
        v.sort();
        v
    }

    /// `dladdr`: resolve an absolute address to the loaded object and
    /// symbol containing it, searching every namespace.
    pub fn dladdr(&self, addr: usize) -> Option<DlAddrInfo> {
        for (ns_idx, ns) in self.namespaces.iter().enumerate() {
            for img in ns.images.values() {
                let seg = img.segment_addrs();
                if seg.contains_code(addr) {
                    let symbol = img
                        .fn_at_addr(addr)
                        .map(|(n, off)| (n.to_string(), off));
                    return Some(DlAddrInfo {
                        path: img.binary.path.clone(),
                        namespace: NamespaceId(ns_idx),
                        segment: "code",
                        base: seg.code_base,
                        symbol,
                    });
                }
                if seg.contains_data(addr) {
                    let offset = addr - seg.data_base;
                    let symbol = img
                        .binary
                        .layout
                        .data_syms
                        .iter()
                        .find(|(_, s)| offset >= s.offset && offset < s.offset + s.size)
                        .map(|(n, s)| (n.clone(), offset - s.offset));
                    return Some(DlAddrInfo {
                        path: img.binary.path.clone(),
                        namespace: NamespaceId(ns_idx),
                        segment: "data",
                        base: seg.data_base,
                        symbol,
                    });
                }
            }
        }
        None
    }
}

/// What [`DynLoader::dladdr`] reports.
#[derive(Debug, Clone)]
pub struct DlAddrInfo {
    pub path: String,
    pub namespace: NamespaceId,
    pub segment: &'static str,
    pub base: usize,
    /// Covering symbol and the address's offset within it, if any.
    pub symbol: Option<(String, usize)>,
}

impl Default for DynLoader {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for DynLoader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DynLoader")
            .field("namespaces", &self.namespaces.len())
            .field("max_dlmopen", &self.max_dlmopen_namespaces)
            .field("patched_glibc", &self.patched_glibc)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::link;
    use crate::spec::ImageSpec;

    fn bin(name: &str) -> Arc<ProgramBinary> {
        link(ImageSpec::builder(name).global("g", 8).build())
    }

    #[test]
    fn dlopen_same_file_returns_same_image() {
        let mut ld = DynLoader::new();
        let b = bin("a");
        let i1 = ld.dlopen(&b).unwrap();
        let i2 = ld.dlopen(&b).unwrap();
        assert!(Arc::ptr_eq(&i1, &i2));
    }

    #[test]
    fn dlopen_distinct_copies_gives_distinct_images() {
        // The FSglobals mechanism: distinct file copies load separately.
        let mut ld = DynLoader::new();
        let b = bin("a");
        let c = b.copy_as("/fs/a.0");
        let i1 = ld.dlopen(&b).unwrap();
        let i2 = ld.dlopen(&c).unwrap();
        assert!(!Arc::ptr_eq(&i1, &i2));
        assert_ne!(
            i1.segment_addrs().data_base,
            i2.segment_addrs().data_base
        );
    }

    #[test]
    fn dlmopen_creates_namespaces_and_hits_glibc_limit() {
        let mut ld = DynLoader::new();
        let b = bin("a");
        let mut images = Vec::new();
        for _ in 0..GLIBC_USABLE_NAMESPACES {
            images.push(ld.dlmopen_newlm(&b).unwrap());
        }
        // every namespace got its own data segment
        let mut bases: Vec<usize> = images
            .iter()
            .map(|i| i.segment_addrs().data_base)
            .collect();
        bases.sort_unstable();
        bases.dedup();
        assert_eq!(bases.len(), GLIBC_USABLE_NAMESPACES);
        // the 13th fails on stock glibc
        match ld.dlmopen_newlm(&b) {
            Err(DlError::NamespaceExhausted { limit }) => {
                assert_eq!(limit, GLIBC_USABLE_NAMESPACES)
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn patched_glibc_lifts_the_limit() {
        let mut ld = DynLoader::with_patched_glibc();
        let b = bin("a");
        for _ in 0..100 {
            ld.dlmopen_newlm(&b).unwrap();
        }
        assert!(ld.namespaces_remaining() > 0);
    }

    #[test]
    fn non_pie_rejected() {
        let mut ld = DynLoader::new();
        let b = link(ImageSpec::builder("old").pie(false).global("g", 8).build());
        assert!(matches!(ld.dlopen(&b), Err(DlError::NotPie { .. })));
        assert!(matches!(ld.dlmopen_newlm(&b), Err(DlError::NotPie { .. })));
    }

    #[test]
    fn dlsym_resolves_functions_and_data() {
        use crate::spec::FunctionSpec;
        let mut ld = DynLoader::new();
        let b = link(
            ImageSpec::builder("s")
                .global("gv", 8)
                .function(FunctionSpec::new("entry", 64))
                .build(),
        );
        let img = ld.dlopen(&b).unwrap();
        assert_eq!(ld.dlsym(&img, "entry").unwrap(), img.fn_addr_of("entry").unwrap());
        assert_eq!(
            ld.dlsym(&img, "gv").unwrap(),
            img.data_addr_of("gv").unwrap() as usize
        );
        assert!(matches!(
            ld.dlsym(&img, "missing"),
            Err(DlError::NoSuchSymbol { .. })
        ));
    }

    #[test]
    fn dladdr_resolves_across_namespaces() {
        use crate::spec::FunctionSpec;
        let mut ld = DynLoader::new();
        let b = link(
            ImageSpec::builder("s")
                .global("gv", 8)
                .function(FunctionSpec::new("entry", 64))
                .build(),
        );
        let base_img = ld.dlopen(&b).unwrap();
        let ns_img = ld.dlmopen_newlm(&b).unwrap();
        // same symbol, two namespaces, distinct addresses
        for (img, expect_ns) in [(&base_img, 0usize), (&ns_img, 1)] {
            let fn_addr = img.fn_addr_of("entry").unwrap();
            let info = ld.dladdr(fn_addr + 5).expect("code addr resolves");
            assert_eq!(info.namespace, NamespaceId(expect_ns));
            assert_eq!(info.segment, "code");
            assert_eq!(info.symbol, Some(("entry".to_string(), 5)));
            let dv = img.data_addr_of("gv").unwrap() as usize;
            let info = ld.dladdr(dv).expect("data addr resolves");
            assert_eq!(info.segment, "data");
            assert_eq!(info.symbol, Some(("gv".to_string(), 0)));
        }
        assert!(ld.dladdr(0x10).is_none());
    }

    #[test]
    fn phdr_diff_identifies_new_load() {
        // PIEglobals' before/after diffing technique.
        let mut ld = DynLoader::new();
        let pre = ld.dlopen(&bin("runtime")).unwrap();
        let before = ld.phdr_snapshot();
        let app = bin("app");
        let img = ld.dlopen(&app).unwrap();
        let after = ld.phdr_snapshot();
        let new: Vec<_> = after
            .iter()
            .filter(|e| !before.contains(e))
            .collect();
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].0, app.file_id());
        let _ = (pre, img);
    }
}
