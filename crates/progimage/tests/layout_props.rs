//! Property tests for the linker: random image specs must produce
//! non-overlapping, aligned, fully covered segment layouts; loading must
//! place every symbol where the layout says.

use proptest::prelude::*;
use pvr_progimage::{link, GlobalSpec, ImageSpec, LoadedImage, NamespaceId, VarClass};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn layout_is_sound(var_specs in proptest::collection::vec((1usize..64, 0u8..3), 1..24)) {
        let mut b = ImageSpec::builder("prop");
        for (i, (size, class)) in var_specs.iter().enumerate() {
            let class = match class {
                0 => VarClass::Global,
                1 => VarClass::Static,
                _ => VarClass::ThreadLocal,
            };
            b = b.var(GlobalSpec::new(&format!("v{i}"), *size, class));
        }
        let bin = link(b.build());
        let layout = &bin.layout;

        // data symbols: in-bounds, aligned, disjoint
        let mut spans: Vec<(usize, usize)> = layout
            .data_syms
            .values()
            .map(|s| (s.offset, s.offset + s.size))
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "data symbols overlap");
        }
        if let Some(&(_, end)) = spans.last() {
            prop_assert!(layout.data_size >= end);
        }
        // ditto TLS
        let mut tspans: Vec<(usize, usize)> = layout
            .tls_syms
            .values()
            .map(|s| (s.offset, s.offset + s.size))
            .collect();
        tspans.sort_unstable();
        for w in tspans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "tls symbols overlap");
        }
        // GOT slots: distinct, dense
        let mut slots: Vec<usize> = layout.got_slots.values().copied().collect();
        slots.extend(layout.got_fn_slots.values().copied());
        slots.sort_unstable();
        for w in slots.windows(2) {
            prop_assert!(w[0] != w[1], "duplicate GOT slot");
        }
        prop_assert_eq!(slots.len(), layout.got_len);

        // loading places every symbol at layout-promised offsets, and
        // statics never appear in the GOT
        let img = LoadedImage::load(bin.clone(), NamespaceId::BASE);
        let seg = img.segment_addrs();
        for (name, sym) in &layout.data_syms {
            let addr = img.data_addr_of(name).unwrap() as usize;
            prop_assert_eq!(addr, seg.data_base + sym.offset);
            if sym.class == VarClass::Static {
                prop_assert!(!layout.got_slots.contains_key(name));
            }
        }
    }

    #[test]
    fn distinct_loads_are_isolated(n_vars in 1usize..10, sizes in proptest::collection::vec(1usize..64, 10)) {
        let mut b = ImageSpec::builder("iso");
        for (i, &size) in sizes.iter().enumerate().take(n_vars) {
            b = b.var(GlobalSpec::new(&format!("x{i}"), size, VarClass::Global));
        }
        let bin = link(b.build());
        let a = LoadedImage::load(bin.clone(), NamespaceId::BASE);
        let bimg = LoadedImage::load(bin, NamespaceId(1));
        unsafe {
            std::ptr::write_bytes(a.data_region().base_mut(), 0xEE, a.data_region().len());
        }
        prop_assert!(bimg.data_region().as_slice().iter().all(|&x| x == 0));
    }
}
