//! MPI envelope packing into the RTS's opaque 64-bit tag.
//!
//! Layout: `[comm:16][kind:8][reserved:8][tag:32]`.

/// Message class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    PointToPoint,
    Collective,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope {
    pub comm: u16,
    pub kind: Kind,
    pub tag: u32,
}

impl Envelope {
    pub fn p2p(comm: u16, tag: u32) -> Envelope {
        Envelope {
            comm,
            kind: Kind::PointToPoint,
            tag,
        }
    }

    pub fn coll(comm: u16, tag: u32) -> Envelope {
        Envelope {
            comm,
            kind: Kind::Collective,
            tag,
        }
    }

    pub fn encode(self) -> u64 {
        let kind = match self.kind {
            Kind::PointToPoint => 0u64,
            Kind::Collective => 1u64,
        };
        ((self.comm as u64) << 48) | (kind << 40) | (self.tag as u64)
    }

    pub fn decode(v: u64) -> Envelope {
        let comm = (v >> 48) as u16;
        let kind = match (v >> 40) & 0xFF {
            0 => Kind::PointToPoint,
            1 => Kind::Collective,
            k => panic!("corrupt envelope kind {k}"),
        };
        Envelope {
            comm,
            kind,
            tag: (v & 0xFFFF_FFFF) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_extremes() {
        for env in [
            Envelope::p2p(0, 0),
            Envelope::p2p(u16::MAX, u32::MAX),
            Envelope::coll(7, 12345),
        ] {
            assert_eq!(Envelope::decode(env.encode()), env);
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(comm: u16, tag: u32, coll: bool) {
            let env = if coll { Envelope::coll(comm, tag) } else { Envelope::p2p(comm, tag) };
            prop_assert_eq!(Envelope::decode(env.encode()), env);
        }
    }
}
