//! Derived datatypes — the subset of MPI's type machinery that halo
//! exchanges actually use.
//!
//! AMPI transports opaque bytes; derived datatypes describe how to
//! gather ("pack") non-contiguous application memory into a wire buffer
//! and scatter it back ("unpack"). `Vector` is the workhorse: `count`
//! blocks of `blocklen` elements separated by `stride` elements — e.g. a
//! *column* of a row-major 2-D grid is `Vector { count: rows, blocklen:
//! 1, stride: row_len }`.

use bytes::Bytes;

/// A datatype over `f64` elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Datatype {
    /// `count` contiguous elements.
    Contiguous { count: usize },
    /// `count` blocks of `blocklen` elements, block starts `stride`
    /// elements apart (`MPI_Type_vector`).
    Vector {
        count: usize,
        blocklen: usize,
        stride: usize,
    },
}

impl Datatype {
    pub fn contiguous(count: usize) -> Datatype {
        Datatype::Contiguous { count }
    }

    pub fn vector(count: usize, blocklen: usize, stride: usize) -> Datatype {
        assert!(blocklen <= stride, "blocks may not overlap");
        Datatype::Vector {
            count,
            blocklen,
            stride,
        }
    }

    /// Elements transferred by one instance of the type.
    pub fn element_count(&self) -> usize {
        match *self {
            Datatype::Contiguous { count } => count,
            Datatype::Vector {
                count, blocklen, ..
            } => count * blocklen,
        }
    }

    /// Extent in elements of the region the type walks over.
    pub fn extent(&self) -> usize {
        match *self {
            Datatype::Contiguous { count } => count,
            Datatype::Vector {
                count,
                blocklen,
                stride,
            } => {
                if count == 0 {
                    0
                } else {
                    (count - 1) * stride + blocklen
                }
            }
        }
    }

    /// Pack `src` (which must cover the type's extent) into a wire
    /// buffer.
    pub fn pack(&self, src: &[f64]) -> Bytes {
        assert!(
            src.len() >= self.extent(),
            "source slice shorter than the datatype's extent"
        );
        let mut out = Vec::with_capacity(self.element_count() * 8);
        match *self {
            Datatype::Contiguous { count } => {
                for v in &src[..count] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Datatype::Vector {
                count,
                blocklen,
                stride,
            } => {
                for b in 0..count {
                    let start = b * stride;
                    for v in &src[start..start + blocklen] {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
        Bytes::from(out)
    }

    /// Unpack a wire buffer produced by an *equal-element-count* type
    /// into `dst` at this type's positions.
    pub fn unpack(&self, wire: &[u8], dst: &mut [f64]) {
        assert_eq!(
            wire.len(),
            self.element_count() * 8,
            "wire buffer does not match the datatype's element count"
        );
        assert!(
            dst.len() >= self.extent(),
            "destination slice shorter than the datatype's extent"
        );
        let mut elems = wire
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()));
        match *self {
            Datatype::Contiguous { count } => {
                for slot in dst[..count].iter_mut() {
                    *slot = elems.next().unwrap();
                }
            }
            Datatype::Vector {
                count,
                blocklen,
                stride,
            } => {
                for b in 0..count {
                    let start = b * stride;
                    for slot in dst[start..start + blocklen].iter_mut() {
                        *slot = elems.next().unwrap();
                    }
                }
            }
        }
    }
}

impl crate::Ampi {
    /// Typed send: pack `src` through `ty` and send.
    pub fn send_typed(
        &self,
        comm: crate::CommId,
        dest: usize,
        tag: u32,
        src: &[f64],
        ty: Datatype,
    ) {
        self.send_bytes(comm, dest, tag, ty.pack(src));
    }

    /// Typed receive: receive and scatter into `dst` through `ty`.
    pub fn recv_typed(
        &self,
        comm: crate::CommId,
        src: Option<usize>,
        tag: Option<u32>,
        dst: &mut [f64],
        ty: Datatype,
    ) -> crate::Status {
        let (b, status) = self.recv_bytes(comm, src, tag);
        ty.unpack(&b, dst);
        status
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_roundtrip() {
        let ty = Datatype::contiguous(4);
        let src = [1.0, 2.0, 3.0, 4.0, 99.0];
        let wire = ty.pack(&src);
        assert_eq!(wire.len(), 32);
        let mut dst = [0.0; 5];
        ty.unpack(&wire, &mut dst);
        assert_eq!(&dst[..4], &src[..4]);
        assert_eq!(dst[4], 0.0, "beyond the type untouched");
    }

    #[test]
    fn vector_extracts_a_matrix_column() {
        // 3x4 row-major matrix; column 2 = elements 2, 6, 10
        let m: Vec<f64> = (0..12).map(|x| x as f64).collect();
        let col = Datatype::vector(3, 1, 4);
        assert_eq!(col.element_count(), 3);
        assert_eq!(col.extent(), 9);
        let wire = col.pack(&m[2..]); // start at column offset
        let got: Vec<f64> = wire
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(got, vec![2.0, 6.0, 10.0]);
    }

    #[test]
    fn vector_scatter_into_column() {
        let mut m = [0.0f64; 12];
        let col = Datatype::vector(3, 1, 4);
        let wire = Datatype::contiguous(3).pack(&[7.0, 8.0, 9.0]);
        col.unpack(&wire, &mut m[1..]);
        assert_eq!(m[1], 7.0);
        assert_eq!(m[5], 8.0);
        assert_eq!(m[9], 9.0);
        assert_eq!(m.iter().filter(|&&v| v != 0.0).count(), 3);
    }

    #[test]
    fn blocked_vector() {
        // 2 blocks of 3, stride 5: elements 0,1,2 and 5,6,7
        let src: Vec<f64> = (0..10).map(|x| x as f64).collect();
        let ty = Datatype::vector(2, 3, 5);
        assert_eq!(ty.element_count(), 6);
        assert_eq!(ty.extent(), 8);
        let wire = ty.pack(&src);
        let mut dst = vec![0.0; 10];
        ty.unpack(&wire, &mut dst);
        assert_eq!(dst, vec![0.0, 1.0, 2.0, 0.0, 0.0, 5.0, 6.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_blocks_rejected() {
        let _ = Datatype::vector(2, 5, 3);
    }

    #[test]
    #[should_panic(expected = "shorter than")]
    fn short_source_rejected() {
        let ty = Datatype::vector(3, 1, 4);
        let _ = ty.pack(&[0.0; 5]);
    }

    #[test]
    fn column_halo_exchange_end_to_end() {
        use crate::testutil::run_spmd;
        use crate::COMM_WORLD;
        // two ranks each own a 4x4 block of a row-major grid, split by
        // columns; they exchange their boundary column via Vector types
        run_spmd(2, 1, |mpi| {
            let me = mpi.rank();
            let rows = 4usize;
            let width = 5usize; // 4 owned + 1 ghost column
            let mut grid = vec![0.0f64; rows * width];
            // fill owned region with rank-distinct values
            for r in 0..rows {
                for c in 0..4 {
                    let cc = if me == 0 { c } else { c + 1 };
                    grid[r * width + cc] = (me * 100 + r * 10 + c) as f64;
                }
            }
            let col = Datatype::vector(rows, 1, width);
            let other = 1 - me;
            if me == 0 {
                // send my last owned column (index 3), receive ghost (4)
                let wire = col.pack(&grid[3..]);
                mpi.send_bytes(COMM_WORLD, other, 0, wire);
                let (b, _) = mpi.recv_bytes(COMM_WORLD, Some(other), Some(0));
                let mut ghost = grid.split_off(4);
                col.unpack(&b, &mut ghost);
                grid.extend(ghost);
                // ghost column now holds rank 1's first owned column
                for r in 0..rows {
                    assert_eq!(grid[r * width + 4], (100 + r * 10) as f64);
                }
            } else {
                let wire = col.pack(&grid[1..]);
                mpi.send_bytes(COMM_WORLD, other, 0, wire);
                let (b, _) = mpi.recv_bytes(COMM_WORLD, Some(other), Some(0));
                col.unpack(&b, &mut grid[0..]);
                for r in 0..rows {
                    assert_eq!(grid[r * width], (r * 10 + 3) as f64);
                }
            }
        });
    }
}
