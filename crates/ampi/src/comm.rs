//! Communicators.

use crate::{Ampi, Op};

/// Communicator handle (index into the per-rank communicator table; the
/// table evolves identically on every member because communicator
/// construction is collective and deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CommId(pub(crate) u16);

/// `MPI_COMM_WORLD`.
pub const COMM_WORLD: CommId = CommId(0);

#[derive(Debug, Clone)]
pub struct Comm {
    /// Global (COMM_WORLD) ranks of the members, ordered by local rank.
    pub members: Vec<usize>,
    /// This rank's index in `members`.
    pub my_index: usize,
}

impl Comm {
    pub fn world(n: usize) -> Comm {
        Comm {
            members: (0..n).collect(),
            my_index: 0, // fixed up by Ampi::init caller context
        }
    }
}

impl Ampi {
    /// `MPI_Comm_dup`.
    pub fn comm_dup(&self, comm: CommId) -> CommId {
        // Collective in MPI; deterministic here, but keep the barrier for
        // semantic fidelity (all members synchronize).
        self.barrier(comm);
        let mut st = self.state.borrow_mut();
        let c = st.comms[comm.0 as usize].clone();
        st.comms.push(c);
        st.coll_seq.push(0);
        CommId((st.comms.len() - 1) as u16)
    }

    /// `MPI_Comm_split`: ranks with equal `color` form a new
    /// communicator, ordered by `(key, old rank)`.
    pub fn comm_split(&self, comm: CommId, color: i64, key: i64) -> CommId {
        // allgather (color, key) over comm — deterministic on all members
        let mine = [color, key];
        let bytes: Vec<u8> = mine.iter().flat_map(|v| v.to_le_bytes()).collect();
        let all = self.allgather_bytes(comm, bytes.into());
        let my_local = self.comm_rank(comm);
        let my_color = color;

        // build my group: (key, local, global) sorted
        let mut group: Vec<(i64, usize, usize)> = Vec::new();
        for (local, b) in all.iter().enumerate() {
            let c = i64::from_le_bytes(b[0..8].try_into().unwrap());
            let k = i64::from_le_bytes(b[8..16].try_into().unwrap());
            if c == my_color {
                let global = self.to_global(comm, local);
                group.push((k, local, global));
            }
        }
        group.sort();
        let members: Vec<usize> = group.iter().map(|&(_, _, g)| g).collect();
        let my_global = self.to_global(comm, my_local);
        let my_index = members
            .iter()
            .position(|&g| g == my_global)
            .expect("split must include self");

        let mut st = self.state.borrow_mut();
        st.comms.push(Comm { members, my_index });
        st.coll_seq.push(0);
        CommId((st.comms.len() - 1) as u16)
    }

    /// Fix up world communicator's my_index (called by init).
    pub(crate) fn fixup_world(&self) {
        let me = self.ctx.rank();
        self.state.borrow_mut().comms[0].my_index = me;
    }

    /// Sum of a single value across a communicator — convenience used in
    /// several tests and apps.
    pub fn allreduce_one(&self, v: f64, op: Op) -> f64 {
        self.allreduce(&[v], op)[0]
    }
}
