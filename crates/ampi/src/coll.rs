//! Collective operations, built over point-to-point messaging with the
//! textbook algorithms (dissemination barrier, binomial trees, ring
//! allgather, pairwise alltoall, linear scan chain).
//!
//! Every collective allocates a fresh sequence number on its
//! communicator; rounds within it are sub-tagged. Matching is by exact
//! (comm, seq-tag, source), so back-to-back collectives on one
//! communicator cannot cross-talk even when messages arrive early.

use crate::comm::CommId;
use crate::envelope::Envelope;
use crate::op::Op;
use crate::util::{bytes_to_f64s, f64s_to_bytes};
use crate::Ampi;
use bytes::Bytes;

impl Ampi {
    fn coll_send(&self, comm: CommId, dest_local: usize, tag: u32, payload: Bytes) {
        let g = self.to_global(comm, dest_local);
        self.raw_send(g, Envelope::coll(comm.0, tag), payload);
    }

    fn coll_recv(&self, comm: CommId, src_local: usize, tag: u32) -> Bytes {
        let g = self.to_global(comm, src_local);
        let m = self.recv_matching(Self::coll_pred(comm, tag, g));
        m.payload
    }

    /// `MPI_Barrier` — dissemination algorithm, ⌈log2 p⌉ rounds.
    pub fn barrier(&self, comm: CommId) {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Barrier" });
        let p = self.comm_size(comm);
        if p <= 1 {
            return;
        }
        let me = self.comm_rank(comm);
        let seq = self.next_coll_seq(comm);
        let mut k = 0u32;
        let mut dist = 1usize;
        while dist < p {
            let tag = Self::coll_tag(seq, k);
            let to = (me + dist) % p;
            let from = (me + p - dist) % p;
            self.coll_send(comm, to, tag, Bytes::new());
            let _ = self.coll_recv(comm, from, tag);
            dist <<= 1;
            k += 1;
        }
    }

    /// `MPI_Bcast` — binomial tree from `root`.
    pub fn bcast_bytes(&self, comm: CommId, root: usize, data: Option<Bytes>) -> Bytes {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Bcast" });
        let p = self.comm_size(comm);
        let me = self.comm_rank(comm);
        let seq = self.next_coll_seq(comm);
        if p == 1 {
            return data.expect("root must supply data");
        }
        let vrank = (me + p - root) % p;
        let mut buf = if me == root {
            data.expect("root must supply data")
        } else {
            // receive from parent: the highest set bit of vrank
            let mut mask = 1usize;
            while mask <= vrank {
                mask <<= 1;
            }
            mask >>= 1;
            let parent_v = vrank - mask;
            let parent = (parent_v + root) % p;
            self.coll_recv(comm, parent, Self::coll_tag(seq, 0))
        };
        // forward to children
        let mut mask = 1usize;
        while mask <= vrank {
            mask <<= 1;
        }
        while mask < p {
            let child_v = vrank + mask;
            if child_v < p {
                let child = (child_v + root) % p;
                self.coll_send(comm, child, Self::coll_tag(seq, 0), buf.clone());
            }
            mask <<= 1;
        }
        if me != root {
            // keep shape: non-roots return the received data
            buf = buf.clone();
        }
        buf
    }

    /// `MPI_Reduce` — binomial tree onto `root`; returns `Some(result)`
    /// on root, `None` elsewhere.
    pub fn reduce(&self, comm: CommId, root: usize, data: &[f64], op: Op) -> Option<Vec<f64>> {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Reduce" });
        let p = self.comm_size(comm);
        let me = self.comm_rank(comm);
        let seq = self.next_coll_seq(comm);
        let vrank = (me + p - root) % p;
        let mut acc = data.to_vec();
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                // send partial to partner and drop out
                let parent_v = vrank - mask;
                let parent = (parent_v + root) % p;
                self.coll_send(comm, parent, Self::coll_tag(seq, 0), f64s_to_bytes(&acc));
                return None;
            } else if vrank + mask < p {
                let child_v = vrank + mask;
                let child = (child_v + root) % p;
                let partial = bytes_to_f64s(&self.coll_recv(comm, child, Self::coll_tag(seq, 0)));
                self.apply_op(op, &partial, &mut acc);
            }
            mask <<= 1;
        }
        debug_assert_eq!(me, root);
        Some(acc)
    }

    /// `MPI_Allreduce` — reduce to rank 0 then broadcast.
    pub fn allreduce(&self, data: &[f64], op: Op) -> Vec<f64> {
        self.allreduce_comm(crate::COMM_WORLD, data, op)
    }

    pub fn allreduce_comm(&self, comm: CommId, data: &[f64], op: Op) -> Vec<f64> {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Allreduce" });
        let result = self.reduce(comm, 0, data, op);
        let bytes = self.bcast_bytes(comm, 0, result.map(|r| f64s_to_bytes(&r)));
        bytes_to_f64s(&bytes)
    }

    /// `MPI_Gather` (variable-size payloads allowed, like `Gatherv`).
    pub fn gather_bytes(&self, comm: CommId, root: usize, mine: Bytes) -> Option<Vec<Bytes>> {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Gather" });
        let p = self.comm_size(comm);
        let me = self.comm_rank(comm);
        let seq = self.next_coll_seq(comm);
        if me == root {
            let mut parts: Vec<Option<Bytes>> = vec![None; p];
            parts[me] = Some(mine);
            for (i, part) in parts.iter_mut().enumerate() {
                if i != me {
                    *part = Some(self.coll_recv(comm, i, Self::coll_tag(seq, 0)));
                }
            }
            Some(parts.into_iter().map(|b| b.unwrap()).collect())
        } else {
            self.coll_send(comm, root, Self::coll_tag(seq, 0), mine);
            None
        }
    }

    /// `MPI_Scatter(v)` — root supplies one part per rank.
    pub fn scatter_bytes(&self, comm: CommId, root: usize, parts: Option<Vec<Bytes>>) -> Bytes {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Scatter" });
        let p = self.comm_size(comm);
        let me = self.comm_rank(comm);
        let seq = self.next_coll_seq(comm);
        if me == root {
            let parts = parts.expect("root must supply parts");
            assert_eq!(parts.len(), p, "scatter needs one part per rank");
            for (i, part) in parts.iter().enumerate() {
                if i != me {
                    self.coll_send(comm, i, Self::coll_tag(seq, 0), part.clone());
                }
            }
            parts[me].clone()
        } else {
            self.coll_recv(comm, root, Self::coll_tag(seq, 0))
        }
    }

    /// `MPI_Allgather` — ring algorithm, p−1 steps.
    pub fn allgather_bytes(&self, comm: CommId, mine: Bytes) -> Vec<Bytes> {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Allgather" });
        let p = self.comm_size(comm);
        let me = self.comm_rank(comm);
        let seq = self.next_coll_seq(comm);
        let mut parts: Vec<Option<Bytes>> = vec![None; p];
        parts[me] = Some(mine);
        let right = (me + 1) % p;
        let left = (me + p - 1) % p;
        for step in 0..p.saturating_sub(1) {
            // send the piece we received last step (or ours) to the right
            let send_idx = (me + p - step) % p;
            let tag = Self::coll_tag(seq, step as u32);
            self.coll_send(
                comm,
                right,
                tag,
                parts[send_idx].clone().expect("piece present"),
            );
            let recv_idx = (me + p - step - 1) % p;
            let data = self.coll_recv(comm, left, tag);
            parts[recv_idx] = Some(data);
        }
        parts.into_iter().map(|b| b.unwrap()).collect()
    }

    /// `MPI_Alltoall(v)` — pairwise exchange.
    pub fn alltoall_bytes(&self, comm: CommId, parts: Vec<Bytes>) -> Vec<Bytes> {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Alltoall" });
        let p = self.comm_size(comm);
        let me = self.comm_rank(comm);
        assert_eq!(parts.len(), p);
        let seq = self.next_coll_seq(comm);
        let mut out: Vec<Option<Bytes>> = vec![None; p];
        out[me] = Some(parts[me].clone());
        for step in 1..p {
            let partner = me ^ step;
            let tag = Self::coll_tag(seq, step as u32);
            if partner < p {
                self.coll_send(comm, partner, tag, parts[partner].clone());
                out[partner] = Some(self.coll_recv(comm, partner, tag));
            }
        }
        // XOR pairing only covers power-of-two sizes fully; fall back to
        // a pairwise pattern (symmetric tag per pair) for any leftovers.
        for i in 0..p {
            if out[i].is_none() {
                let pair = (me.min(i) * p + me.max(i)) as u32;
                let tag = Self::coll_tag(seq, p as u32 + pair);
                self.coll_send(comm, i, tag, parts[i].clone());
                out[i] = Some(self.coll_recv(comm, i, tag));
            }
        }
        out.into_iter().map(|b| b.unwrap()).collect()
    }

    /// `MPI_Exscan` — exclusive prefix: rank r gets the combination of
    /// ranks 0..r (rank 0 gets `identity`).
    pub fn exscan(&self, comm: CommId, data: &[f64], op: Op, identity: &[f64]) -> Vec<f64> {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Exscan" });
        let p = self.comm_size(comm);
        let me = self.comm_rank(comm);
        let seq = self.next_coll_seq(comm);
        assert_eq!(data.len(), identity.len());
        // receive the prefix of ranks 0..me from the left
        let prefix = if me == 0 {
            identity.to_vec()
        } else {
            bytes_to_f64s(&self.coll_recv(comm, me - 1, Self::coll_tag(seq, 0)))
        };
        // forward prefix ⊕ mine to the right
        if me + 1 < p {
            let mut next = prefix.clone();
            if me == 0 {
                next = data.to_vec();
            } else {
                self.apply_op(op, data, &mut next);
            }
            self.coll_send(comm, me + 1, Self::coll_tag(seq, 0), f64s_to_bytes(&next));
        }
        prefix
    }

    /// `MPI_Reduce_scatter_block`: elementwise-reduce a `p * n` array,
    /// then scatter block `r` (length `n`) to rank `r`.
    pub fn reduce_scatter_block(&self, comm: CommId, data: &[f64], op: Op) -> Vec<f64> {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall {
            name: "MPI_Reduce_scatter_block",
        });
        let p = self.comm_size(comm);
        assert_eq!(data.len() % p, 0, "data must be p equal blocks");
        let n = data.len() / p;
        let total = self.reduce(comm, 0, data, op);
        let parts = total.map(|t| {
            t.chunks(n)
                .map(crate::util::f64s_to_bytes)
                .collect::<Vec<_>>()
        });
        bytes_to_f64s(&self.scatter_bytes(comm, 0, parts))
    }

    /// `MPI_Scan` — inclusive prefix along the rank order (linear chain).
    pub fn scan(&self, comm: CommId, data: &[f64], op: Op) -> Vec<f64> {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Scan" });
        let p = self.comm_size(comm);
        let me = self.comm_rank(comm);
        let seq = self.next_coll_seq(comm);
        let mut acc = data.to_vec();
        if me > 0 {
            let prefix = bytes_to_f64s(&self.coll_recv(comm, me - 1, Self::coll_tag(seq, 0)));
            // acc = prefix ⊕ mine (order matters for non-commutative ops)
            let mine = acc.clone();
            acc = prefix;
            self.apply_op(op, &mine, &mut acc);
        }
        if me + 1 < p {
            self.coll_send(comm, me + 1, Self::coll_tag(seq, 0), f64s_to_bytes(&acc));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::run_spmd;
    use crate::{Op, COMM_WORLD};
    use bytes::Bytes;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn barrier_synchronizes() {
        let before = Arc::new(AtomicUsize::new(0));
        let b2 = before.clone();
        run_spmd(2, 2, move |mpi| {
            b2.fetch_add(1, Ordering::SeqCst);
            mpi.barrier(COMM_WORLD);
            // after the barrier, every rank must have incremented
            assert_eq!(b2.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn bcast_from_each_root() {
        run_spmd(2, 2, |mpi| {
            for root in 0..mpi.size() {
                let data = if mpi.rank() == root {
                    Some(Bytes::from(format!("from-{root}")))
                } else {
                    None
                };
                let out = mpi.bcast_bytes(COMM_WORLD, root, data);
                assert_eq!(&out[..], format!("from-{root}").as_bytes());
            }
        });
    }

    #[test]
    fn reduce_sum_on_root() {
        run_spmd(2, 2, |mpi| {
            let me = mpi.rank() as f64;
            let result = mpi.reduce(COMM_WORLD, 0, &[me, me * 10.0], Op::Sum);
            if mpi.rank() == 0 {
                let r = result.unwrap();
                assert_eq!(r, vec![6.0, 60.0]); // 0+1+2+3
            } else {
                assert!(result.is_none());
            }
        });
    }

    #[test]
    fn allreduce_min_max_prod() {
        run_spmd(2, 2, |mpi| {
            let me = mpi.rank() as f64 + 1.0; // 1..=4
            assert_eq!(mpi.allreduce(&[me], Op::Min)[0], 1.0);
            assert_eq!(mpi.allreduce(&[me], Op::Max)[0], 4.0);
            assert_eq!(mpi.allreduce(&[me], Op::Prod)[0], 24.0);
        });
    }

    #[test]
    fn user_op_via_offset_under_pieglobals() {
        // user_max_abs is registered in the test binary; each rank's op
        // handle is an offset anchored to its own code copy.
        run_spmd(2, 2, |mpi| {
            let op = mpi.op_create("user_max_abs");
            let me = mpi.rank() as f64;
            let v = [if me == 2.0 { -9.0 } else { me }];
            let r = mpi.allreduce(&v, Op::User(op));
            assert_eq!(r[0], 9.0, "max |x| over {{0,1,-9,3}}");
        });
    }

    #[test]
    fn gather_and_scatter_roundtrip() {
        run_spmd(2, 2, |mpi| {
            let me = mpi.rank();
            let gathered = mpi.gather_bytes(COMM_WORLD, 1, Bytes::from(vec![me as u8; me + 1]));
            let parts = if me == 1 {
                let g = gathered.unwrap();
                assert_eq!(g.len(), 4);
                for (i, p) in g.iter().enumerate() {
                    assert_eq!(p.len(), i + 1);
                    assert!(p.iter().all(|&b| b == i as u8));
                }
                Some(g)
            } else {
                assert!(gathered.is_none());
                None
            };
            let mine = mpi.scatter_bytes(COMM_WORLD, 1, parts);
            assert_eq!(mine.len(), me + 1);
            assert!(mine.iter().all(|&b| b == me as u8));
        });
    }

    #[test]
    fn allgather_ring() {
        run_spmd(3, 1, |mpi| {
            let me = mpi.rank();
            let all = mpi.allgather_bytes(COMM_WORLD, Bytes::from(vec![me as u8 * 3]));
            assert_eq!(all.len(), 3);
            for (i, p) in all.iter().enumerate() {
                assert_eq!(&p[..], &[i as u8 * 3]);
            }
        });
    }

    #[test]
    fn alltoall_transpose() {
        for size in [(2usize, 2usize), (3, 1)] {
            run_spmd(size.0, size.1, |mpi| {
                let p = mpi.size();
                let me = mpi.rank();
                // part j = [me, j]
                let parts: Vec<Bytes> = (0..p)
                    .map(|j| Bytes::from(vec![me as u8, j as u8]))
                    .collect();
                let got = mpi.alltoall_bytes(COMM_WORLD, parts);
                for (j, b) in got.iter().enumerate() {
                    assert_eq!(&b[..], &[j as u8, me as u8], "cell ({me},{j})");
                }
            });
        }
    }

    #[test]
    fn scan_prefix_sums() {
        run_spmd(2, 2, |mpi| {
            let me = mpi.rank() as f64 + 1.0;
            let r = mpi.scan(COMM_WORLD, &[me], Op::Sum);
            let expect: f64 = (1..=mpi.rank() + 1).map(|x| x as f64).sum();
            assert_eq!(r[0], expect);
        });
    }

    #[test]
    fn comm_split_even_odd() {
        run_spmd(2, 2, |mpi| {
            let me = mpi.rank();
            let sub = mpi.comm_split(COMM_WORLD, (me % 2) as i64, me as i64);
            assert_eq!(mpi.comm_size(sub), 2);
            assert_eq!(mpi.comm_rank(sub), me / 2);
            // collectives work on the subcommunicator
            let total = mpi.allreduce_comm(sub, &[me as f64], Op::Sum)[0];
            let expect = if me % 2 == 0 { 2.0 } else { 4.0 }; // 0+2 / 1+3
            assert_eq!(total, expect);
        });
    }

    #[test]
    fn comm_dup_independent_sequence() {
        run_spmd(2, 1, |mpi| {
            let dup = mpi.comm_dup(COMM_WORLD);
            // interleave collectives on both comms
            let a = mpi.allreduce_comm(COMM_WORLD, &[1.0], Op::Sum)[0];
            let b = mpi.allreduce_comm(dup, &[2.0], Op::Sum)[0];
            assert_eq!(a, 2.0);
            assert_eq!(b, 4.0);
        });
    }

    #[test]
    fn collectives_on_non_power_of_two() {
        run_spmd(3, 1, |mpi| {
            let me = mpi.rank() as f64;
            assert_eq!(mpi.allreduce(&[me], Op::Sum)[0], 3.0);
            mpi.barrier(COMM_WORLD);
            let r = mpi.scan(COMM_WORLD, &[1.0], Op::Sum);
            assert_eq!(r[0], mpi.rank() as f64 + 1.0);
        });
    }
}
