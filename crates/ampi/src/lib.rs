//! # pvr-ampi — Adaptive-MPI-style message passing over virtualized ranks
//!
//! The MPI face of the reproduction: ranks are `pvr-rts` user-level
//! threads, and this crate provides communicators, tagged point-to-point
//! matching with wildcards, non-blocking requests, the standard
//! collectives, and reduction operators — including the paper's §3.3
//! *function-pointer-offset* encoding for user-defined `MPI_Op`s, which is
//! what keeps them meaningful when every rank has its own code-segment
//! copy under PIEglobals.
//!
//! Layering (bottom-up): the RTS transports opaque messages addressed by
//! rank and knows nothing about MPI; all matching happens *inside* the
//! receiving rank against its unexpected-message queue. That is also why
//! messages trivially survive migration — they chase ranks, not PEs.
//!
//! ```text
//! application (pvr-apps)        jacobi3d, surge, hello
//!   └── pvr-ampi                MPI semantics           ← this crate
//!         └── pvr-rts           scheduling, delivery, LB, migration
//!               └── pvr-ult     context switches
//! ```
//!
//! ## Quick example (inside a machine body)
//!
//! ```
//! use pvr_ampi::{Ampi, Op};
//! use pvr_rts::{MachineBuilder, Topology};
//! use pvr_progimage::{link, ImageSpec};
//! use std::sync::Arc;
//!
//! let bin = link(ImageSpec::builder("demo").global("g", 8).build());
//! let mut machine = MachineBuilder::new(bin)
//!     .topology(Topology::smp(2))
//!     .vp_ratio(2)
//!     .build(Arc::new(|ctx| {
//!         let mpi = Ampi::init(ctx);
//!         let me = mpi.rank() as f64;
//!         let total = mpi.allreduce(&[me], Op::Sum)[0];
//!         assert_eq!(total, 0.0 + 1.0 + 2.0 + 3.0);
//!         mpi.finalize();
//!     }))
//!     .unwrap();
//! machine.run().unwrap();
//! ```

pub mod coll;
pub mod comm;
pub mod datatype;
pub mod envelope;
pub mod op;
pub mod p2p;
pub mod util;

pub use comm::{CommId, COMM_WORLD};
pub use datatype::Datatype;
pub use op::{Op, OpHandle};
pub use p2p::{RecvReq, ReqId, SendReq, Status, ANY_SOURCE, ANY_TAG};

use bytes::Bytes;
use envelope::{Envelope, Kind};
use pvr_rts::RankCtx;
use std::cell::RefCell;
use std::collections::BTreeMap;

/// A decoded message held in the unexpected queue.
#[derive(Debug, Clone)]
pub(crate) struct Incoming {
    pub env: Envelope,
    /// Sender's *global* rank (translated per communicator on match).
    pub src_global: usize,
    pub payload: Bytes,
}

/// A `recv_then` continuation closure.
pub(crate) type ContFn = Box<dyn FnOnce(&Ampi, Bytes, p2p::Status)>;

/// A registered `recv_then` continuation: the closure to run when the
/// matching message arrives, plus the communicator for status decoding.
pub(crate) struct ContEntry {
    pub comm: CommId,
    pub f: ContFn,
}

pub(crate) struct State {
    pub comms: Vec<comm::Comm>,
    pub unexpected: Vec<Incoming>,
    /// Per-communicator collective sequence numbers.
    pub coll_seq: Vec<u32>,
    /// Payloads claimed from the unexpected queue when a nonblocking
    /// receive was posted (the runtime entry is a born-complete local
    /// post), keyed by request id until the wait family collects them.
    pub prematched: BTreeMap<u64, (Bytes, p2p::Status)>,
    /// Outcomes reaped from the runtime completion queue but not yet
    /// handed to the caller (`test` stashes; `waitany`/`waitsome` reap
    /// whole completed subsets). `None` marks a completed send.
    pub reaped: BTreeMap<u64, Option<(Bytes, p2p::Status)>>,
    /// Pending `recv_then` continuations by request id.
    pub continuations: BTreeMap<u64, ContEntry>,
    /// Live continuation nesting depth (capped by
    /// `MachineConfig::continuation_depth`).
    pub cont_depth: u32,
}

/// The per-rank MPI library handle (`MPI_Init` .. `MPI_Finalize`).
pub struct Ampi {
    pub(crate) ctx: RankCtx,
    pub(crate) state: RefCell<State>,
}

impl Ampi {
    /// `MPI_Init`: attach the MPI library to this virtual rank.
    pub fn init(ctx: RankCtx) -> Ampi {
        let world = comm::Comm::world(ctx.n_ranks());
        let ampi = Ampi {
            ctx,
            state: RefCell::new(State {
                comms: vec![world],
                unexpected: Vec::new(),
                coll_seq: vec![0],
                prematched: BTreeMap::new(),
                reaped: BTreeMap::new(),
                continuations: BTreeMap::new(),
                cont_depth: 0,
            }),
        };
        ampi.fixup_world();
        ampi
    }

    /// `MPI_Comm_rank(MPI_COMM_WORLD)`.
    pub fn rank(&self) -> usize {
        self.ctx.rank()
    }

    /// `MPI_Comm_size(MPI_COMM_WORLD)`.
    pub fn size(&self) -> usize {
        self.ctx.n_ranks()
    }

    /// Rank within an arbitrary communicator.
    pub fn comm_rank(&self, comm: CommId) -> usize {
        self.state.borrow().comms[comm.0 as usize].my_index
    }

    pub fn comm_size(&self, comm: CommId) -> usize {
        self.state.borrow().comms[comm.0 as usize].members.len()
    }

    /// `MPI_Wtime`.
    pub fn wtime(&self) -> f64 {
        self.ctx.wtime()
    }

    /// AMPI extension `AMPI_Migrate`: a load-balancing sync point at
    /// which the runtime may migrate this rank to another PE.
    pub fn migrate(&self) {
        self.ctx.at_sync();
    }

    /// Declare modeled computation time (virtual-time runs).
    pub fn compute(&self, work: pvr_des::SimDuration) {
        self.ctx.compute(work);
    }

    /// Underlying runtime context (escape hatch for apps).
    pub fn ctx(&self) -> &RankCtx {
        &self.ctx
    }

    /// `MPI_Finalize` — nothing to tear down in this model, but apps call
    /// it for shape fidelity.
    pub fn finalize(&self) {}

    // -- internal plumbing shared by p2p and collectives ----------------

    /// Raw-send with an envelope; `to_global` is a COMM_WORLD rank.
    pub(crate) fn raw_send(&self, to_global: usize, env: Envelope, payload: Bytes) {
        self.ctx.send(to_global, env.encode(), payload);
    }

    /// Blocking-receive the first message satisfying `pred`, in arrival
    /// order (MPI non-overtaking), stashing non-matching traffic.
    pub(crate) fn recv_matching(&self, mut pred: impl FnMut(&Incoming) -> bool) -> Incoming {
        loop {
            {
                let mut st = self.state.borrow_mut();
                if let Some(pos) = st.unexpected.iter().position(&mut pred) {
                    return st.unexpected.remove(pos);
                }
            }
            let raw = self.ctx.recv();
            let inc = Incoming {
                env: Envelope::decode(raw.tag),
                src_global: raw.from,
                payload: raw.payload,
            };
            self.state.borrow_mut().unexpected.push(inc);
        }
    }

    /// Non-blocking variant: drain the runtime mailbox, then scan.
    pub(crate) fn try_recv_matching(
        &self,
        mut pred: impl FnMut(&Incoming) -> bool,
    ) -> Option<Incoming> {
        while let Some(raw) = self.ctx.try_recv() {
            let inc = Incoming {
                env: Envelope::decode(raw.tag),
                src_global: raw.from,
                payload: raw.payload,
            };
            self.state.borrow_mut().unexpected.push(inc);
        }
        let mut st = self.state.borrow_mut();
        st.unexpected
            .iter()
            .position(&mut pred)
            .map(|pos| st.unexpected.remove(pos))
    }

    /// Allocate the next collective sequence number on `comm`.
    pub(crate) fn next_coll_seq(&self, comm: CommId) -> u32 {
        let mut st = self.state.borrow_mut();
        let seq = st.coll_seq[comm.0 as usize];
        st.coll_seq[comm.0 as usize] = seq.wrapping_add(1);
        seq
    }

    /// Kind/tag for round `round` of collective number `seq`.
    pub(crate) fn coll_tag(seq: u32, round: u32) -> u32 {
        seq.wrapping_mul(64).wrapping_add(round)
    }

    /// Translate a communicator-local rank to a global rank.
    pub(crate) fn to_global(&self, comm: CommId, local: usize) -> usize {
        self.state.borrow().comms[comm.0 as usize].members[local]
    }

    /// Translate a global rank to its index in `comm` (None if absent).
    pub(crate) fn to_local(&self, comm: CommId, global: usize) -> Option<usize> {
        self.state.borrow().comms[comm.0 as usize]
            .members
            .iter()
            .position(|&g| g == global)
    }

    pub(crate) fn coll_pred(
        comm: CommId,
        tag: u32,
        src_global: usize,
    ) -> impl FnMut(&Incoming) -> bool {
        move |m: &Incoming| {
            m.env.kind == Kind::Collective
                && m.env.comm == comm.0
                && m.env.tag == tag
                && m.src_global == src_global
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use pvr_privatize::Method;
    use pvr_progimage::{link, FunctionSpec, ImageSpec};
    use pvr_rts::{ClockMode, MachineBuilder, Topology};
    use std::sync::Arc;

    /// Run `body` as an SPMD program on `n_pes` PEs × `vp` ranks each.
    pub fn run_spmd(n_pes: usize, vp: usize, body: impl Fn(&Ampi) + Send + Sync + 'static) {
        let bin = link(
            ImageSpec::builder("ampi-test")
                .global("g", 8)
                .function(FunctionSpec::new("user_max_abs", 64).with_callable(Arc::new(
                    |input: &[u8], acc: &mut [u8]| {
                        // elementwise max(|a|, |b|) on f64 arrays
                        let n = acc.len() / 8;
                        for i in 0..n {
                            let a = f64::from_le_bytes(input[i * 8..i * 8 + 8].try_into().unwrap());
                            let b = f64::from_le_bytes(acc[i * 8..i * 8 + 8].try_into().unwrap());
                            let m = a.abs().max(b.abs());
                            acc[i * 8..i * 8 + 8].copy_from_slice(&m.to_le_bytes());
                        }
                    },
                )))
                .build(),
        );
        let mut machine = MachineBuilder::new(bin)
            .topology(Topology::non_smp(n_pes))
            .vp_ratio(vp)
            .method(Method::PieGlobals)
            .clock(ClockMode::RealTime)
            .build(Arc::new(move |ctx| {
                let mpi = Ampi::init(ctx);
                body(&mpi);
                mpi.finalize();
            }))
            .unwrap();
        machine.run().unwrap();
    }
}
