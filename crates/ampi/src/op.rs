//! Reduction operators, including user-defined `MPI_Op`s encoded as
//! code-segment *offsets*.
//!
//! §3.3: "AMPI implemented user-defined custom reduction operators by
//! simply calling the same user function pointer on whichever core it may
//! need to. With PIEglobals, we had to modify AMPI to subtract the base
//! address from the user function address during MPI_Op creation, to
//! store that offset in the op, and to then apply that offset to some
//! rank's base address whenever applying the reduction operator."
//!
//! [`Ampi::op_create`] performs exactly that subtraction against *this
//! rank's* image base; [`Ampi::apply_op`] re-anchors the offset to the
//! applying rank's base. A raw-address op applied on a rank with a
//! different code copy would jump into the weeds — the unit tests
//! demonstrate the offset encoding survives where addresses cannot.

use crate::Ampi;
use pvr_progimage::spec::Callable;

/// Reduction operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Sum,
    Prod,
    Min,
    Max,
    /// User-defined operator created by [`Ampi::op_create`].
    User(OpHandle),
}

/// Handle to a user reduction function: an *offset from the image base*,
/// not an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpHandle {
    pub(crate) offset: usize,
}

impl OpHandle {
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl Ampi {
    /// `MPI_Op_create`: look up the user function *in this rank's own
    /// image*, take its address, subtract the image base, store the
    /// offset.
    pub fn op_create(&self, fn_name: &str) -> OpHandle {
        let layout_offset = self
            .ctx
            .binary()
            .layout
            .fn_syms
            .get(fn_name)
            .unwrap_or_else(|| panic!("MPI_Op_create: no such function `{fn_name}`"))
            .offset;
        // address in THIS rank's (possibly private) code copy...
        let addr = self.ctx.instance().offset_to_fn_addr(layout_offset);
        // ...then base-subtracted, per the paper.
        let offset = self.ctx.instance().fn_addr_to_offset(addr);
        debug_assert_eq!(offset, layout_offset);
        OpHandle { offset }
    }

    /// Resolve and run `op` to combine `input` into `acc` (both f64
    /// arrays of equal length). For user ops, the offset is applied to
    /// *this* rank's image base.
    pub fn apply_op(&self, op: Op, input: &[f64], acc: &mut [f64]) {
        assert_eq!(input.len(), acc.len(), "reduction length mismatch");
        match op {
            Op::Sum => {
                for (a, x) in acc.iter_mut().zip(input) {
                    *a += x;
                }
            }
            Op::Prod => {
                for (a, x) in acc.iter_mut().zip(input) {
                    *a *= x;
                }
            }
            Op::Min => {
                for (a, x) in acc.iter_mut().zip(input) {
                    *a = a.min(*x);
                }
            }
            Op::Max => {
                for (a, x) in acc.iter_mut().zip(input) {
                    *a = a.max(*x);
                }
            }
            Op::User(h) => {
                let callable = self.resolve_user_op(h);
                let in_bytes: Vec<u8> = input.iter().flat_map(|v| v.to_le_bytes()).collect();
                let mut acc_bytes: Vec<u8> = acc.iter().flat_map(|v| v.to_le_bytes()).collect();
                callable(&in_bytes, &mut acc_bytes);
                for (i, a) in acc.iter_mut().enumerate() {
                    *a = f64::from_le_bytes(acc_bytes[i * 8..i * 8 + 8].try_into().unwrap());
                }
            }
        }
    }

    /// Anchor the op's offset to this rank's image base and resolve the
    /// resulting address back into callable behavior.
    pub(crate) fn resolve_user_op(&self, h: OpHandle) -> Callable {
        // offset → address in this rank's code copy (may differ per rank
        // under PIEglobals) → offset again → behavior. The double
        // conversion is deliberate: it is the paper's mechanism, and it
        // would catch a raw-address op leaking across ranks.
        let addr = self.ctx.instance().offset_to_fn_addr(h.offset);
        let offset = self.ctx.instance().fn_addr_to_offset(addr);
        let layout = &self.ctx.binary().layout;
        let (name, _) = layout
            .fn_syms
            .iter()
            .find(|(_, s)| offset >= s.offset && offset < s.offset + s.size)
            .unwrap_or_else(|| panic!("no function at offset {offset}"));
        self.ctx
            .binary()
            .spec
            .function(name)
            .and_then(|f| f.callable.clone())
            .unwrap_or_else(|| panic!("function `{name}` has no registered behavior"))
    }
}
