//! Point-to-point communication: blocking and non-blocking sends and
//! receives with MPI tag/source matching, including wildcards.
//!
//! Blocking matching runs inside the receiving rank against its
//! unexpected-message queue in arrival order, which gives MPI's
//! non-overtaking guarantee for any fixed `(source, tag, comm)` triple.
//!
//! Nonblocking operations are real requests in the runtime's per-rank
//! request table: [`Ampi::irecv`] posts a delivery-time matching
//! predicate (a [`MatchSpec`] over the encoded envelope), so an arriving
//! message completes the receive the moment it is deposited — not when
//! the rank later waits — and [`Ampi::isend_bytes`] completes when the
//! reliable-delivery layer acks (or at post under unconditional
//! delivery). The wait family ([`Ampi::wait`], [`Ampi::waitall`],
//! [`Ampi::waitany`], [`Ampi::waitsome`], [`Ampi::test`]) reaps
//! completions from the per-rank completion queue; posted-then-matched
//! order is preserved because a posted receive claims messages in post
//! order and the unexpected queue is checked before posting.
//!
//! [`Ampi::recv_then`] registers a completion *continuation*: a closure
//! the library runs from [`Ampi::progress`] / [`Ampi::progress_wait`]
//! when the matching message arrives, without suspending the rank.
//!
//! [`MatchSpec`]: pvr_rts::MatchSpec

use crate::comm::CommId;
use crate::envelope::{Envelope, Kind};
use crate::{Ampi, ContEntry, Incoming};
use bytes::Bytes;
use pvr_rts::{MatchSpec, RtsMessage};

/// `MPI_ANY_SOURCE`.
pub const ANY_SOURCE: Option<usize> = None;
/// `MPI_ANY_TAG`.
pub const ANY_TAG: Option<u32> = None;

/// Envelope bits that always participate in nonblocking matching:
/// communicator and message kind (`[comm:16][kind:8]`, the top 24 bits
/// of the encoded tag word).
const ENVELOPE_MASK: u64 = 0xFFFF_FF00_0000_0000;

/// Completed-receive metadata (`MPI_Status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Source rank, local to the receive's communicator.
    pub source: usize,
    pub tag: u32,
    pub bytes: usize,
}

/// Opaque id of a request in the runtime's per-rank request table.
///
/// Obtained from [`SendReq::id`]/[`RecvReq::id`] or returned by
/// [`Ampi::recv_then`]; useful for logging and for correlating with
/// `ReqPost`/`ReqComplete` trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(pub(crate) u64);

impl ReqId {
    /// The raw table index (as it appears in trace events).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Handle for a nonblocking send (`MPI_Isend`). Completed — and
/// consumed — by [`Ampi::wait_send`]/[`Ampi::waitall_sends`]; dropping
/// it without waiting leaks the request (tallied at finalize, cleaned
/// up by the runtime).
#[derive(Debug)]
#[must_use = "nonblocking sends must be completed with wait_send/waitall_sends"]
pub struct SendReq {
    pub(crate) id: u64,
}

impl SendReq {
    pub fn id(&self) -> ReqId {
        ReqId(self.id)
    }
}

/// Handle for a nonblocking receive (`MPI_Irecv`). Completed — and
/// consumed — by the wait family; dropping it without waiting leaks the
/// request (tallied at finalize, cleaned up by the runtime).
#[derive(Debug)]
#[must_use = "nonblocking receives must be completed with wait/waitall/waitany/waitsome"]
pub struct RecvReq {
    pub(crate) id: u64,
    pub(crate) comm: CommId,
}

impl RecvReq {
    pub fn id(&self) -> ReqId {
        ReqId(self.id)
    }
}

impl Ampi {
    fn p2p_pred(
        &self,
        comm: CommId,
        src: Option<usize>,
        tag: Option<u32>,
    ) -> impl FnMut(&Incoming) -> bool + '_ {
        let src_global = src.map(|local| self.to_global(comm, local));
        move |m: &Incoming| {
            m.env.kind == Kind::PointToPoint
                && m.env.comm == comm.0
                && src_global.is_none_or(|g| m.src_global == g)
                && tag.is_none_or(|t| m.env.tag == t)
        }
    }

    fn status_of(&self, comm: CommId, m: &Incoming) -> Status {
        Status {
            source: self
                .to_local(comm, m.src_global)
                .expect("sender must be a communicator member"),
            tag: m.env.tag,
            bytes: m.payload.len(),
        }
    }

    /// Delivery-time matching predicate for the runtime: the envelope
    /// header bits (communicator, kind) always participate; a concrete
    /// tag pins the low 32 bits too, and a concrete source pins the
    /// sender. Wildcards simply drop their term.
    fn match_spec(&self, comm: CommId, src: Option<usize>, tag: Option<u32>) -> MatchSpec {
        let mut mask = ENVELOPE_MASK;
        let mut value = Envelope::p2p(comm.0, 0).encode() & ENVELOPE_MASK;
        if let Some(t) = tag {
            mask |= u32::MAX as u64;
            value |= t as u64;
        }
        MatchSpec {
            src: src.map(|local| self.to_global(comm, local)),
            tag_mask: mask,
            tag_value: value,
        }
    }

    /// Status for a receive the *runtime* matched (the message never
    /// entered the unexpected queue).
    fn status_from_msg(&self, comm: CommId, m: &RtsMessage) -> Status {
        Status {
            source: self
                .to_local(comm, m.from)
                .expect("sender must be a communicator member"),
            tag: Envelope::decode(m.tag).tag,
            bytes: m.payload.len(),
        }
    }

    /// Turn a reaped receive outcome into payload + status: a message
    /// for runtime-matched receives, the prematched stash for receives
    /// claimed from the unexpected queue at post time.
    fn recv_outcome(&self, comm: CommId, id: u64, msg: Option<RtsMessage>) -> (Bytes, Status) {
        match msg {
            Some(m) => {
                let status = self.status_from_msg(comm, &m);
                (m.payload, status)
            }
            None => self
                .state
                .borrow_mut()
                .prematched
                .remove(&id)
                .expect("local receive must carry a prematched payload"),
        }
    }

    /// Post a nonblocking receive without emitting a trace call (shared
    /// by `irecv` and `recv_then`): claim from the unexpected queue
    /// first — earlier arrivals must win over anything still in the
    /// runtime mailbox — else hand the runtime a delivery-time predicate.
    fn post_recv(&self, comm: CommId, src: Option<usize>, tag: Option<u32>) -> RecvReq {
        let mut pred = self.p2p_pred(comm, src, tag);
        let claimed = {
            let mut st = self.state.borrow_mut();
            st.unexpected
                .iter()
                .position(&mut pred)
                .map(|pos| st.unexpected.remove(pos))
        };
        drop(pred);
        if let Some(m) = claimed {
            let status = self.status_of(comm, &m);
            let id = self.ctx.req_post_local();
            self.state
                .borrow_mut()
                .prematched
                .insert(id, (m.payload, status));
            return RecvReq { id, comm };
        }
        let spec = self.match_spec(comm, src, tag);
        RecvReq {
            id: self.ctx.req_post_recv(spec),
            comm,
        }
    }

    /// `MPI_Send` (buffered): never blocks in this model, like AMPI's
    /// eager path for reasonable message sizes.
    pub fn send_bytes(&self, comm: CommId, dest: usize, tag: u32, payload: Bytes) {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Send" });
        let to_global = self.to_global(comm, dest);
        self.raw_send(to_global, Envelope::p2p(comm.0, tag), payload);
    }

    /// `MPI_Recv` with optional wildcards.
    pub fn recv_bytes(
        &self,
        comm: CommId,
        src: Option<usize>,
        tag: Option<u32>,
    ) -> (Bytes, Status) {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Recv" });
        let mut pred = self.p2p_pred(comm, src, tag);
        let m = self.recv_matching(&mut pred);
        drop(pred);
        let status = self.status_of(comm, &m);
        (m.payload, status)
    }

    /// `MPI_Iprobe`-then-receive: non-blocking.
    pub fn try_recv_bytes(
        &self,
        comm: CommId,
        src: Option<usize>,
        tag: Option<u32>,
    ) -> Option<(Bytes, Status)> {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Iprobe" });
        let mut pred = self.p2p_pred(comm, src, tag);
        let m = self.try_recv_matching(&mut pred)?;
        drop(pred);
        let status = self.status_of(comm, &m);
        Some((m.payload, status))
    }

    /// `MPI_Isend`: posts into the runtime request table and returns a
    /// typed handle. The request completes when the reliable-delivery
    /// layer acks the payload (lossy virtual-time runs) or at post time
    /// (unconditional delivery) — either way, completion is observed
    /// through [`Ampi::wait_send`]/[`Ampi::waitall_sends`]/[`Ampi::test_send`].
    pub fn isend_bytes(&self, comm: CommId, dest: usize, tag: u32, payload: Bytes) -> SendReq {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Isend" });
        let to_global = self.to_global(comm, dest);
        SendReq {
            id: self
                .ctx
                .req_post_send(to_global, Envelope::p2p(comm.0, tag).encode(), payload),
        }
    }

    /// `MPI_Irecv`: posts a delivery-time matching predicate into the
    /// runtime request table. An arriving message completes the request
    /// when it is deposited, so communication overlaps whatever the rank
    /// does between post and wait.
    pub fn irecv(&self, comm: CommId, src: Option<usize>, tag: Option<u32>) -> RecvReq {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Irecv" });
        self.post_recv(comm, src, tag)
    }

    /// `MPI_Test` on a receive: true once the matching message has been
    /// delivered. Reaped outcomes are stashed, so a `test`-then-`wait`
    /// sequence observes the completion exactly once.
    pub fn test(&self, req: &RecvReq) -> bool {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Test" });
        if self.state.borrow().reaped.contains_key(&req.id) {
            return true;
        }
        let outcomes = self.ctx.req_test(vec![req.id], false);
        self.stash_recv_outcomes(&[(req.id, req.comm)], outcomes);
        self.state.borrow().reaped.contains_key(&req.id)
    }

    /// `MPI_Test` on a send.
    pub fn test_send(&self, req: &SendReq) -> bool {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Test" });
        if self.state.borrow().reaped.contains_key(&req.id) {
            return true;
        }
        for (id, _) in self.ctx.req_test(vec![req.id], false) {
            self.state.borrow_mut().reaped.insert(id, None);
        }
        self.state.borrow().reaped.contains_key(&req.id)
    }

    /// `MPI_Wait` on a receive: suspends until the matching message has
    /// been delivered, then returns it.
    pub fn wait(&self, req: RecvReq) -> (Bytes, Status) {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Wait" });
        if let Some(done) = self.state.borrow_mut().reaped.remove(&req.id) {
            return done.expect("receive outcome stashed for a recv id");
        }
        let outcomes = self.ctx.req_wait(vec![req.id], false, false);
        let (_, msg) = outcomes
            .into_iter()
            .next()
            .expect("wait returns the named request");
        self.recv_outcome(req.comm, req.id, msg)
    }

    /// `MPI_Wait` on a send: suspends until the delivery layer acks.
    pub fn wait_send(&self, req: SendReq) {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Wait" });
        if self.state.borrow_mut().reaped.remove(&req.id).is_some() {
            return;
        }
        self.ctx.req_wait(vec![req.id], false, false);
    }

    /// `MPI_Waitall` over receives: one suspension for the whole set,
    /// results in request order.
    pub fn waitall(&self, reqs: Vec<RecvReq>) -> Vec<(Bytes, Status)> {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall {
            name: "MPI_Waitall",
        });
        let todo: Vec<u64> = {
            let st = self.state.borrow();
            reqs.iter()
                .map(|r| r.id)
                .filter(|id| !st.reaped.contains_key(id))
                .collect()
        };
        let outcomes = self.ctx.req_wait(todo, false, false);
        let key: Vec<(u64, CommId)> = reqs.iter().map(|r| (r.id, r.comm)).collect();
        self.stash_recv_outcomes(&key, outcomes);
        reqs.into_iter()
            .map(|r| {
                self.state
                    .borrow_mut()
                    .reaped
                    .remove(&r.id)
                    .expect("waitall reaps every named request")
                    .expect("receive outcome stashed for a recv id")
            })
            .collect()
    }

    /// `MPI_Waitall` over sends: one suspension for the whole set.
    pub fn waitall_sends(&self, reqs: Vec<SendReq>) {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall {
            name: "MPI_Waitall",
        });
        let todo: Vec<u64> = {
            let mut st = self.state.borrow_mut();
            reqs.iter()
                .map(|r| r.id)
                .filter(|id| st.reaped.remove(id).is_none())
                .collect()
        };
        self.ctx.req_wait(todo, false, false);
    }

    /// `MPI_Waitany`: suspends until at least one of `reqs` completes,
    /// removes that request from the vector, and returns its original
    /// index with the received payload. Other completions observed along
    /// the way are stashed for later waits.
    pub fn waitany(&self, reqs: &mut Vec<RecvReq>) -> (usize, Bytes, Status) {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall {
            name: "MPI_Waitany",
        });
        assert!(!reqs.is_empty(), "waitany over an empty request set");
        if let Some(idx) = self.first_reaped_index(reqs) {
            return self.take_at(reqs, idx);
        }
        let ids: Vec<u64> = reqs.iter().map(|r| r.id).collect();
        let outcomes = self.ctx.req_wait(ids, true, false);
        let first = outcomes.first().map(|&(id, _)| id);
        let key: Vec<(u64, CommId)> = reqs.iter().map(|r| (r.id, r.comm)).collect();
        self.stash_recv_outcomes(&key, outcomes);
        let first = first.expect("waitany must deliver at least one completion");
        let idx = reqs
            .iter()
            .position(|r| r.id == first)
            .expect("completed id names a posted request");
        self.take_at(reqs, idx)
    }

    /// `MPI_Waitsome`: suspends until at least one of `reqs` completes,
    /// then removes and returns *every* currently-completed request as
    /// `(original_index, payload, status)` triples in index order.
    pub fn waitsome(&self, reqs: &mut Vec<RecvReq>) -> Vec<(usize, Bytes, Status)> {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall {
            name: "MPI_Waitsome",
        });
        assert!(!reqs.is_empty(), "waitsome over an empty request set");
        if self.first_reaped_index(reqs).is_none() {
            let ids: Vec<u64> = reqs.iter().map(|r| r.id).collect();
            let key: Vec<(u64, CommId)> = reqs.iter().map(|r| (r.id, r.comm)).collect();
            let outcomes = self.ctx.req_wait(ids, true, false);
            self.stash_recv_outcomes(&key, outcomes);
        }
        let done: Vec<usize> = {
            let st = self.state.borrow();
            (0..reqs.len())
                .filter(|&i| st.reaped.contains_key(&reqs[i].id))
                .collect()
        };
        let mut out = Vec::with_capacity(done.len());
        for (removed, idx) in done.into_iter().enumerate() {
            let (_, b, s) = self.take_at(reqs, idx - removed);
            out.push((idx, b, s));
        }
        out
    }

    /// Register a completion continuation (AMPI extension): when a
    /// message matching `(comm, src, tag)` arrives, the library runs `f`
    /// from the next [`Ampi::progress`]/[`Ampi::progress_wait`] call —
    /// the rank never suspends in a wait for it. Nesting (a continuation
    /// driving progress that runs further continuations) is capped by
    /// `MachineConfig::continuation_depth`.
    pub fn recv_then(
        &self,
        comm: CommId,
        src: Option<usize>,
        tag: Option<u32>,
        f: impl FnOnce(&Ampi, Bytes, Status) + 'static,
    ) -> ReqId {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall {
            name: "AMPI_Recv_then",
        });
        let req = self.post_recv(comm, src, tag);
        self.state.borrow_mut().continuations.insert(
            req.id,
            ContEntry {
                comm,
                f: Box::new(f),
            },
        );
        ReqId(req.id)
    }

    /// Poll the completion queue and run every continuation whose
    /// message has arrived. Never suspends. Returns how many ran.
    pub fn progress(&self) -> usize {
        let ids: Vec<u64> = self.state.borrow().continuations.keys().copied().collect();
        if ids.is_empty() {
            return 0;
        }
        let outcomes = self.ctx.req_test(ids, true);
        self.run_continuations(outcomes)
    }

    /// Suspend until at least one registered continuation's message
    /// arrives, then run every continuation that has completed. Returns
    /// how many ran (0 if none are registered).
    pub fn progress_wait(&self) -> usize {
        let ids: Vec<u64> = self.state.borrow().continuations.keys().copied().collect();
        if ids.is_empty() {
            return 0;
        }
        let outcomes = self.ctx.req_wait(ids, true, true);
        self.run_continuations(outcomes)
    }

    /// Outstanding `recv_then` continuations not yet delivered.
    pub fn pending_continuations(&self) -> usize {
        self.state.borrow().continuations.len()
    }

    /// Run delivered continuations under the configured nesting cap.
    fn run_continuations(&self, outcomes: Vec<(u64, Option<RtsMessage>)>) -> usize {
        let n = outcomes.len();
        let cap = self.ctx.continuation_depth();
        for (id, msg) in outcomes {
            let entry = self
                .state
                .borrow_mut()
                .continuations
                .remove(&id)
                .expect("completion delivered for an unknown continuation");
            let (payload, status) = self.recv_outcome(entry.comm, id, msg);
            {
                let mut st = self.state.borrow_mut();
                st.cont_depth += 1;
                assert!(
                    st.cont_depth <= cap,
                    "continuation depth cap ({cap}) exceeded: a recv_then closure is \
                     recursively driving progress (MachineConfig::continuation_depth)"
                );
            }
            (entry.f)(self, payload, status);
            self.state.borrow_mut().cont_depth -= 1;
        }
        n
    }

    /// Decode reaped outcomes into the stash. `key` maps request ids to
    /// their communicators; send ids may appear in `outcomes` without a
    /// key entry and stash as `None`.
    fn stash_recv_outcomes(
        &self,
        key: &[(u64, CommId)],
        outcomes: Vec<(u64, Option<RtsMessage>)>,
    ) {
        for (id, msg) in outcomes {
            let done = key
                .iter()
                .find(|&&(k, _)| k == id)
                .map(|&(_, comm)| self.recv_outcome(comm, id, msg));
            self.state.borrow_mut().reaped.insert(id, done);
        }
    }

    /// Lowest index in `reqs` whose outcome is already stashed.
    fn first_reaped_index(&self, reqs: &[RecvReq]) -> Option<usize> {
        let st = self.state.borrow();
        (0..reqs.len()).find(|&i| st.reaped.contains_key(&reqs[i].id))
    }

    /// Remove `reqs[idx]` and return its stashed outcome.
    fn take_at(&self, reqs: &mut Vec<RecvReq>, idx: usize) -> (usize, Bytes, Status) {
        let req = reqs.remove(idx);
        let (b, s) = self
            .state
            .borrow_mut()
            .reaped
            .remove(&req.id)
            .expect("outcome stashed before take_at")
            .expect("receive outcome stashed for a recv id");
        (idx, b, s)
    }

    /// `MPI_Sendrecv` — the halo-exchange workhorse; deadlock-free
    /// because sends are buffered.
    pub fn sendrecv(
        &self,
        comm: CommId,
        dest: usize,
        send_tag: u32,
        payload: Bytes,
        src: Option<usize>,
        recv_tag: Option<u32>,
    ) -> (Bytes, Status) {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall {
            name: "MPI_Sendrecv",
        });
        self.send_bytes(comm, dest, send_tag, payload);
        self.recv_bytes(comm, src, recv_tag)
    }

    // -- typed convenience wrappers --------------------------------------

    pub fn send_f64s(&self, comm: CommId, dest: usize, tag: u32, data: &[f64]) {
        self.send_bytes(comm, dest, tag, crate::util::f64s_to_bytes(data));
    }

    pub fn recv_f64s(
        &self,
        comm: CommId,
        src: Option<usize>,
        tag: Option<u32>,
    ) -> (Vec<f64>, Status) {
        let (b, s) = self.recv_bytes(comm, src, tag);
        (crate::util::bytes_to_f64s(&b), s)
    }

    /// Nonblocking typed send.
    pub fn isend_f64s(&self, comm: CommId, dest: usize, tag: u32, data: &[f64]) -> SendReq {
        self.isend_bytes(comm, dest, tag, crate::util::f64s_to_bytes(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_spmd;
    use crate::COMM_WORLD;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn tagged_send_recv() {
        run_spmd(2, 1, |mpi| {
            if mpi.rank() == 0 {
                mpi.send_bytes(COMM_WORLD, 1, 7, Bytes::from_static(b"seven"));
                mpi.send_bytes(COMM_WORLD, 1, 8, Bytes::from_static(b"eight"));
            } else {
                // receive out of order by tag: 8 first, then 7
                let (b8, s8) = mpi.recv_bytes(COMM_WORLD, Some(0), Some(8));
                assert_eq!(&b8[..], b"eight");
                assert_eq!(s8.tag, 8);
                let (b7, s7) = mpi.recv_bytes(COMM_WORLD, Some(0), Some(7));
                assert_eq!(&b7[..], b"seven");
                assert_eq!(s7.source, 0);
            }
        });
    }

    #[test]
    fn wildcard_source_and_tag() {
        run_spmd(3, 1, |mpi| {
            if mpi.rank() == 2 {
                let mut froms = Vec::new();
                for _ in 0..2 {
                    let (b, s) = mpi.recv_bytes(COMM_WORLD, ANY_SOURCE, ANY_TAG);
                    assert_eq!(b.len(), 1);
                    froms.push(s.source);
                }
                froms.sort_unstable();
                assert_eq!(froms, vec![0, 1]);
            } else {
                mpi.send_bytes(
                    COMM_WORLD,
                    2,
                    mpi.rank() as u32,
                    Bytes::from(vec![mpi.rank() as u8]),
                );
            }
        });
    }

    #[test]
    fn non_overtaking_order_preserved() {
        run_spmd(2, 1, |mpi| {
            if mpi.rank() == 0 {
                for i in 0..10u8 {
                    mpi.send_bytes(COMM_WORLD, 1, 1, Bytes::from(vec![i]));
                }
            } else {
                for i in 0..10u8 {
                    let (b, _) = mpi.recv_bytes(COMM_WORLD, Some(0), Some(1));
                    assert_eq!(b[0], i, "same (src,tag,comm) must arrive in order");
                }
            }
        });
    }

    #[test]
    fn self_send_works() {
        run_spmd(1, 1, |mpi| {
            mpi.send_bytes(COMM_WORLD, 0, 5, Bytes::from_static(b"me"));
            let (b, s) = mpi.recv_bytes(COMM_WORLD, Some(0), Some(5));
            assert_eq!(&b[..], b"me");
            assert_eq!(s.source, 0);
        });
    }

    #[test]
    fn irecv_wait_and_test() {
        run_spmd(2, 1, |mpi| {
            if mpi.rank() == 0 {
                // request posted before the message exists
                let req = mpi.irecv(COMM_WORLD, Some(1), Some(3));
                assert!(!mpi.test(&req));
                mpi.send_bytes(COMM_WORLD, 1, 2, Bytes::from_static(b"go"));
                let (b, s) = mpi.wait(req);
                assert_eq!(&b[..], b"answer");
                assert_eq!(s.tag, 3);
            } else {
                let (b, _) = mpi.recv_bytes(COMM_WORLD, Some(0), Some(2));
                assert_eq!(&b[..], b"go");
                let sreq = mpi.isend_bytes(COMM_WORLD, 0, 3, Bytes::from_static(b"answer"));
                // unconditional delivery: sends complete at post
                assert!(mpi.test_send(&sreq));
                mpi.wait_send(sreq);
            }
        });
    }

    #[test]
    fn waitall_multiple_receives() {
        run_spmd(3, 1, |mpi| {
            if mpi.rank() == 0 {
                let reqs = vec![
                    mpi.irecv(COMM_WORLD, Some(1), ANY_TAG),
                    mpi.irecv(COMM_WORLD, Some(2), ANY_TAG),
                ];
                let results = mpi.waitall(reqs);
                assert_eq!(&results[0].0[..], &[1]);
                assert_eq!(&results[1].0[..], &[2]);
            } else {
                mpi.send_bytes(COMM_WORLD, 0, 0, Bytes::from(vec![mpi.rank() as u8]));
            }
        });
    }

    #[test]
    fn waitany_returns_completions_as_they_land() {
        run_spmd(3, 1, |mpi| {
            if mpi.rank() == 0 {
                let mut reqs = vec![
                    mpi.irecv(COMM_WORLD, Some(1), Some(10)),
                    mpi.irecv(COMM_WORLD, Some(2), Some(20)),
                ];
                let mut seen = Vec::new();
                while !reqs.is_empty() {
                    let (_, b, s) = mpi.waitany(&mut reqs);
                    seen.push((s.source, b[0]));
                }
                seen.sort_unstable();
                assert_eq!(seen, vec![(1, 1), (2, 2)]);
            } else {
                let me = mpi.rank();
                mpi.send_bytes(
                    COMM_WORLD,
                    0,
                    me as u32 * 10,
                    Bytes::from(vec![me as u8]),
                );
            }
        });
    }

    #[test]
    fn waitsome_drains_ready_subset() {
        run_spmd(2, 1, |mpi| {
            if mpi.rank() == 0 {
                let mut reqs = vec![
                    mpi.irecv(COMM_WORLD, Some(1), Some(1)),
                    mpi.irecv(COMM_WORLD, Some(1), Some(2)),
                    mpi.irecv(COMM_WORLD, Some(1), Some(3)),
                ];
                let mut got = 0;
                while !reqs.is_empty() {
                    for (_, b, s) in mpi.waitsome(&mut reqs) {
                        assert_eq!(b[0] as u32, s.tag);
                        got += 1;
                    }
                }
                assert_eq!(got, 3);
            } else {
                for t in 1..=3u32 {
                    mpi.send_bytes(COMM_WORLD, 0, t, Bytes::from(vec![t as u8]));
                }
            }
        });
    }

    #[test]
    fn recv_then_continuation_fires_on_progress() {
        run_spmd(2, 1, |mpi| {
            if mpi.rank() == 0 {
                let fired = Rc::new(Cell::new(0u32));
                let f = fired.clone();
                mpi.recv_then(COMM_WORLD, Some(1), Some(42), move |mpi, b, s| {
                    assert_eq!(&b[..], b"cont");
                    assert_eq!(s.tag, 42);
                    f.set(f.get() + 1);
                    // a continuation may itself communicate
                    mpi.send_bytes(COMM_WORLD, 1, 43, Bytes::from_static(b"done"));
                });
                assert_eq!(mpi.pending_continuations(), 1);
                while mpi.progress_wait() == 0 {}
                assert_eq!(fired.get(), 1);
                assert_eq!(mpi.pending_continuations(), 0);
            } else {
                mpi.send_bytes(COMM_WORLD, 0, 42, Bytes::from_static(b"cont"));
                let (b, _) = mpi.recv_bytes(COMM_WORLD, Some(0), Some(43));
                assert_eq!(&b[..], b"done");
            }
        });
    }

    #[test]
    fn irecv_prematches_unexpected_queue() {
        run_spmd(2, 1, |mpi| {
            if mpi.rank() == 0 {
                // Pull the tag-2 message into the unexpected queue by
                // receiving tag 1 posted after it.
                let (b1, _) = mpi.recv_bytes(COMM_WORLD, Some(1), Some(1));
                assert_eq!(&b1[..], b"one");
                // Now an irecv for tag 2 must claim the queued message,
                // not wait for a new one.
                let req = mpi.irecv(COMM_WORLD, Some(1), Some(2));
                assert!(mpi.test(&req));
                let (b2, s2) = mpi.wait(req);
                assert_eq!(&b2[..], b"two");
                assert_eq!(s2.tag, 2);
            } else {
                mpi.send_bytes(COMM_WORLD, 0, 2, Bytes::from_static(b"two"));
                mpi.send_bytes(COMM_WORLD, 0, 1, Bytes::from_static(b"one"));
            }
        });
    }

    #[test]
    fn sendrecv_ring_shift() {
        run_spmd(2, 2, |mpi| {
            let p = mpi.size();
            let me = mpi.rank();
            let right = (me + 1) % p;
            let (b, s) = mpi.sendrecv(
                COMM_WORLD,
                right,
                9,
                Bytes::from(vec![me as u8]),
                ANY_SOURCE,
                Some(9),
            );
            assert_eq!(b[0] as usize, (me + p - 1) % p);
            assert_eq!(s.source, (me + p - 1) % p);
        });
    }

    #[test]
    fn try_recv_nonblocking() {
        run_spmd(1, 2, |mpi| {
            if mpi.rank() == 0 {
                assert!(mpi.try_recv_bytes(COMM_WORLD, ANY_SOURCE, ANY_TAG).is_none());
                mpi.barrier(COMM_WORLD);
                // partner has now sent
                loop {
                    if let Some((b, _)) = mpi.try_recv_bytes(COMM_WORLD, Some(1), Some(4)) {
                        assert_eq!(&b[..], b"late");
                        break;
                    }
                    mpi.ctx().yield_now();
                }
            } else {
                mpi.barrier(COMM_WORLD);
                mpi.send_bytes(COMM_WORLD, 0, 4, Bytes::from_static(b"late"));
            }
        });
    }

    #[test]
    fn typed_f64_roundtrip() {
        run_spmd(2, 1, |mpi| {
            if mpi.rank() == 0 {
                mpi.send_f64s(COMM_WORLD, 1, 0, &[1.5, -2.5, 3.25]);
            } else {
                let (v, s) = mpi.recv_f64s(COMM_WORLD, Some(0), Some(0));
                assert_eq!(v, vec![1.5, -2.5, 3.25]);
                assert_eq!(s.bytes, 24);
            }
        });
    }
}
