//! Point-to-point communication: blocking and non-blocking sends and
//! receives with MPI tag/source matching, including wildcards.
//!
//! Matching runs inside the receiving rank against its unexpected-message
//! queue in arrival order, which gives MPI's non-overtaking guarantee for
//! any fixed `(source, tag, comm)` triple.

use crate::comm::CommId;
use crate::envelope::{Envelope, Kind};
use crate::{Ampi, Incoming};
use bytes::Bytes;

/// `MPI_ANY_SOURCE`.
pub const ANY_SOURCE: Option<usize> = None;
/// `MPI_ANY_TAG`.
pub const ANY_TAG: Option<u32> = None;

/// Completed-receive metadata (`MPI_Status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Source rank, local to the receive's communicator.
    pub source: usize,
    pub tag: u32,
    pub bytes: usize,
}

/// A non-blocking operation handle (`MPI_Request`).
#[derive(Debug)]
pub enum Request {
    /// Buffered sends complete at post time.
    SendDone,
    /// A pending receive.
    Recv {
        comm: CommId,
        src: Option<usize>,
        tag: Option<u32>,
        done: Option<(Bytes, Status)>,
    },
}

impl Request {
    pub fn is_complete(&self) -> bool {
        match self {
            Request::SendDone => true,
            Request::Recv { done, .. } => done.is_some(),
        }
    }
}

impl Ampi {
    fn p2p_pred(
        &self,
        comm: CommId,
        src: Option<usize>,
        tag: Option<u32>,
    ) -> impl FnMut(&Incoming) -> bool + '_ {
        let src_global = src.map(|local| self.to_global(comm, local));
        move |m: &Incoming| {
            m.env.kind == Kind::PointToPoint
                && m.env.comm == comm.0
                && src_global.is_none_or(|g| m.src_global == g)
                && tag.is_none_or(|t| m.env.tag == t)
        }
    }

    fn status_of(&self, comm: CommId, m: &Incoming) -> Status {
        Status {
            source: self
                .to_local(comm, m.src_global)
                .expect("sender must be a communicator member"),
            tag: m.env.tag,
            bytes: m.payload.len(),
        }
    }

    /// `MPI_Send` (buffered): never blocks in this model, like AMPI's
    /// eager path for reasonable message sizes.
    pub fn send_bytes(&self, comm: CommId, dest: usize, tag: u32, payload: Bytes) {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Send" });
        let to_global = self.to_global(comm, dest);
        self.raw_send(to_global, Envelope::p2p(comm.0, tag), payload);
    }

    /// `MPI_Recv` with optional wildcards.
    pub fn recv_bytes(
        &self,
        comm: CommId,
        src: Option<usize>,
        tag: Option<u32>,
    ) -> (Bytes, Status) {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Recv" });
        let mut pred = self.p2p_pred(comm, src, tag);
        let m = self.recv_matching(&mut pred);
        drop(pred);
        let status = self.status_of(comm, &m);
        (m.payload, status)
    }

    /// `MPI_Iprobe`-then-receive: non-blocking.
    pub fn try_recv_bytes(
        &self,
        comm: CommId,
        src: Option<usize>,
        tag: Option<u32>,
    ) -> Option<(Bytes, Status)> {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Iprobe" });
        let mut pred = self.p2p_pred(comm, src, tag);
        let m = self.try_recv_matching(&mut pred)?;
        drop(pred);
        let status = self.status_of(comm, &m);
        Some((m.payload, status))
    }

    /// `MPI_Isend` — buffered, so complete at post time.
    pub fn isend_bytes(&self, comm: CommId, dest: usize, tag: u32, payload: Bytes) -> Request {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Isend" });
        self.send_bytes(comm, dest, tag, payload);
        Request::SendDone
    }

    /// `MPI_Irecv`: matching is deferred to `wait`/`test`.
    pub fn irecv(&self, comm: CommId, src: Option<usize>, tag: Option<u32>) -> Request {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Irecv" });
        Request::Recv {
            comm,
            src,
            tag,
            done: None,
        }
    }

    /// `MPI_Test`.
    pub fn test(&self, req: &mut Request) -> bool {
        match req {
            Request::SendDone => true,
            Request::Recv {
                comm,
                src,
                tag,
                done,
            } => {
                if done.is_some() {
                    return true;
                }
                let (comm, src, tag) = (*comm, *src, *tag);
                let mut pred = self.p2p_pred(comm, src, tag);
                if let Some(m) = self.try_recv_matching(&mut pred) {
                    drop(pred);
                    let status = self.status_of(comm, &m);
                    *done = Some((m.payload, status));
                    true
                } else {
                    false
                }
            }
        }
    }

    /// `MPI_Wait`: blocks until the request completes; returns receive
    /// data for receive requests.
    pub fn wait(&self, req: &mut Request) -> Option<(Bytes, Status)> {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall { name: "MPI_Wait" });
        match req {
            Request::SendDone => None,
            Request::Recv {
                comm,
                src,
                tag,
                done,
            } => {
                if let Some(d) = done.take() {
                    return Some(d);
                }
                let (comm, src, tag) = (*comm, *src, *tag);
                let mut pred = self.p2p_pred(comm, src, tag);
                let m = self.recv_matching(&mut pred);
                drop(pred);
                let status = self.status_of(comm, &m);
                Some((m.payload, status))
            }
        }
    }

    /// `MPI_Waitall`: receive results in request order.
    pub fn waitall(&self, reqs: &mut [Request]) -> Vec<Option<(Bytes, Status)>> {
        reqs.iter_mut().map(|r| self.wait(r)).collect()
    }

    /// `MPI_Sendrecv` — the halo-exchange workhorse; deadlock-free
    /// because sends are buffered.
    pub fn sendrecv(
        &self,
        comm: CommId,
        dest: usize,
        send_tag: u32,
        payload: Bytes,
        src: Option<usize>,
        recv_tag: Option<u32>,
    ) -> (Bytes, Status) {
        pvr_trace::emit(pvr_trace::EventKind::MpiCall {
            name: "MPI_Sendrecv",
        });
        self.send_bytes(comm, dest, send_tag, payload);
        self.recv_bytes(comm, src, recv_tag)
    }

    // -- typed convenience wrappers --------------------------------------

    pub fn send_f64s(&self, comm: CommId, dest: usize, tag: u32, data: &[f64]) {
        self.send_bytes(comm, dest, tag, crate::util::f64s_to_bytes(data));
    }

    pub fn recv_f64s(
        &self,
        comm: CommId,
        src: Option<usize>,
        tag: Option<u32>,
    ) -> (Vec<f64>, Status) {
        let (b, s) = self.recv_bytes(comm, src, tag);
        (crate::util::bytes_to_f64s(&b), s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_spmd;
    use crate::COMM_WORLD;

    #[test]
    fn tagged_send_recv() {
        run_spmd(2, 1, |mpi| {
            if mpi.rank() == 0 {
                mpi.send_bytes(COMM_WORLD, 1, 7, Bytes::from_static(b"seven"));
                mpi.send_bytes(COMM_WORLD, 1, 8, Bytes::from_static(b"eight"));
            } else {
                // receive out of order by tag: 8 first, then 7
                let (b8, s8) = mpi.recv_bytes(COMM_WORLD, Some(0), Some(8));
                assert_eq!(&b8[..], b"eight");
                assert_eq!(s8.tag, 8);
                let (b7, s7) = mpi.recv_bytes(COMM_WORLD, Some(0), Some(7));
                assert_eq!(&b7[..], b"seven");
                assert_eq!(s7.source, 0);
            }
        });
    }

    #[test]
    fn wildcard_source_and_tag() {
        run_spmd(3, 1, |mpi| {
            if mpi.rank() == 2 {
                let mut froms = Vec::new();
                for _ in 0..2 {
                    let (b, s) = mpi.recv_bytes(COMM_WORLD, ANY_SOURCE, ANY_TAG);
                    assert_eq!(b.len(), 1);
                    froms.push(s.source);
                }
                froms.sort_unstable();
                assert_eq!(froms, vec![0, 1]);
            } else {
                mpi.send_bytes(
                    COMM_WORLD,
                    2,
                    mpi.rank() as u32,
                    Bytes::from(vec![mpi.rank() as u8]),
                );
            }
        });
    }

    #[test]
    fn non_overtaking_order_preserved() {
        run_spmd(2, 1, |mpi| {
            if mpi.rank() == 0 {
                for i in 0..10u8 {
                    mpi.send_bytes(COMM_WORLD, 1, 1, Bytes::from(vec![i]));
                }
            } else {
                for i in 0..10u8 {
                    let (b, _) = mpi.recv_bytes(COMM_WORLD, Some(0), Some(1));
                    assert_eq!(b[0], i, "same (src,tag,comm) must arrive in order");
                }
            }
        });
    }

    #[test]
    fn self_send_works() {
        run_spmd(1, 1, |mpi| {
            mpi.send_bytes(COMM_WORLD, 0, 5, Bytes::from_static(b"me"));
            let (b, s) = mpi.recv_bytes(COMM_WORLD, Some(0), Some(5));
            assert_eq!(&b[..], b"me");
            assert_eq!(s.source, 0);
        });
    }

    #[test]
    fn irecv_wait_and_test() {
        run_spmd(2, 1, |mpi| {
            if mpi.rank() == 0 {
                // request posted before the message exists
                let mut req = mpi.irecv(COMM_WORLD, Some(1), Some(3));
                assert!(!mpi.test(&mut req));
                mpi.send_bytes(COMM_WORLD, 1, 2, Bytes::from_static(b"go"));
                let (b, s) = mpi.wait(&mut req).unwrap();
                assert_eq!(&b[..], b"answer");
                assert_eq!(s.tag, 3);
            } else {
                let (b, _) = mpi.recv_bytes(COMM_WORLD, Some(0), Some(2));
                assert_eq!(&b[..], b"go");
                let mut sreq = mpi.isend_bytes(COMM_WORLD, 0, 3, Bytes::from_static(b"answer"));
                assert!(sreq.is_complete());
                assert!(mpi.wait(&mut sreq).is_none());
            }
        });
    }

    #[test]
    fn waitall_multiple_receives() {
        run_spmd(3, 1, |mpi| {
            if mpi.rank() == 0 {
                let mut reqs = vec![
                    mpi.irecv(COMM_WORLD, Some(1), ANY_TAG),
                    mpi.irecv(COMM_WORLD, Some(2), ANY_TAG),
                ];
                let results = mpi.waitall(&mut reqs);
                let (b1, _) = results[0].as_ref().unwrap();
                let (b2, _) = results[1].as_ref().unwrap();
                assert_eq!(&b1[..], &[1]);
                assert_eq!(&b2[..], &[2]);
            } else {
                mpi.send_bytes(COMM_WORLD, 0, 0, Bytes::from(vec![mpi.rank() as u8]));
            }
        });
    }

    #[test]
    fn sendrecv_ring_shift() {
        run_spmd(2, 2, |mpi| {
            let p = mpi.size();
            let me = mpi.rank();
            let right = (me + 1) % p;
            let (b, s) = mpi.sendrecv(
                COMM_WORLD,
                right,
                9,
                Bytes::from(vec![me as u8]),
                ANY_SOURCE,
                Some(9),
            );
            assert_eq!(b[0] as usize, (me + p - 1) % p);
            assert_eq!(s.source, (me + p - 1) % p);
        });
    }

    #[test]
    fn try_recv_nonblocking() {
        run_spmd(1, 2, |mpi| {
            if mpi.rank() == 0 {
                assert!(mpi.try_recv_bytes(COMM_WORLD, ANY_SOURCE, ANY_TAG).is_none());
                mpi.barrier(COMM_WORLD);
                // partner has now sent
                loop {
                    if let Some((b, _)) = mpi.try_recv_bytes(COMM_WORLD, Some(1), Some(4)) {
                        assert_eq!(&b[..], b"late");
                        break;
                    }
                    mpi.ctx().yield_now();
                }
            } else {
                mpi.barrier(COMM_WORLD);
                mpi.send_bytes(COMM_WORLD, 0, 4, Bytes::from_static(b"late"));
            }
        });
    }

    #[test]
    fn typed_f64_roundtrip() {
        run_spmd(2, 1, |mpi| {
            if mpi.rank() == 0 {
                mpi.send_f64s(COMM_WORLD, 1, 0, &[1.5, -2.5, 3.25]);
            } else {
                let (v, s) = mpi.recv_f64s(COMM_WORLD, Some(0), Some(0));
                assert_eq!(v, vec![1.5, -2.5, 3.25]);
                assert_eq!(s.bytes, 24);
            }
        });
    }
}
