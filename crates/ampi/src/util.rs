//! Byte-level helpers for typed payloads.

use bytes::Bytes;

/// Serialize an `f64` slice little-endian.
pub fn f64s_to_bytes(data: &[f64]) -> Bytes {
    let mut v = Vec::with_capacity(data.len() * 8);
    for x in data {
        v.extend_from_slice(&x.to_le_bytes());
    }
    Bytes::from(v)
}

/// Deserialize little-endian `f64`s.
pub fn bytes_to_f64s(b: &[u8]) -> Vec<f64> {
    assert_eq!(b.len() % 8, 0, "payload is not a whole number of f64s");
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Serialize a `u64` slice little-endian.
pub fn u64s_to_bytes(data: &[u64]) -> Bytes {
    let mut v = Vec::with_capacity(data.len() * 8);
    for x in data {
        v.extend_from_slice(&x.to_le_bytes());
    }
    Bytes::from(v)
}

pub fn bytes_to_u64s(b: &[u8]) -> Vec<u64> {
    assert_eq!(b.len() % 8, 0);
    b.chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_f64_roundtrip(v in proptest::collection::vec(any::<f64>().prop_filter("finite", |x| x.is_finite()), 0..64)) {
            prop_assert_eq!(bytes_to_f64s(&f64s_to_bytes(&v)), v);
        }

        #[test]
        fn prop_u64_roundtrip(v in proptest::collection::vec(any::<u64>(), 0..64)) {
            prop_assert_eq!(bytes_to_u64s(&u64s_to_bytes(&v)), v);
        }
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_payload_rejected() {
        let _ = bytes_to_f64s(&[1, 2, 3]);
    }
}
