//! Stress and randomized-schedule tests for the MPI layer.
//!
//! These generate message storms and shuffled communication orders and
//! check that matching, ordering, and collectives stay correct under
//! pressure — the situations that break matching engines in practice.

use bytes::Bytes;
use parking_lot::Mutex;
use pvr_ampi::{Ampi, Op, ANY_SOURCE, ANY_TAG, COMM_WORLD};
use pvr_privatize::Method;
use pvr_progimage::{link, ImageSpec};
use pvr_rts::{MachineBuilder, RankCtx, Topology};
use std::sync::Arc;

fn run_spmd(pes: usize, vp: usize, body: impl Fn(&Ampi) + Send + Sync + 'static) {
    let bin = link(ImageSpec::builder("stress").global("g", 8).build());
    let mut machine = MachineBuilder::new(bin)
        .method(Method::PieGlobals)
        .topology(Topology::non_smp(pes))
        .vp_ratio(vp)
        .stack_size(256 * 1024)
        .build(Arc::new(move |ctx: RankCtx| {
            let mpi = Ampi::init(ctx);
            body(&mpi);
        }))
        .unwrap();
    machine.run().unwrap();
}

#[test]
fn message_storm_all_to_one_with_wildcards() {
    // every rank floods rank 0 with tagged bursts; rank 0 drains with
    // wildcards and verifies counts and per-sender ordering
    const PER_SENDER: usize = 50;
    run_spmd(2, 4, move |mpi| {
        let p = mpi.size();
        if mpi.rank() == 0 {
            let mut next_seq = vec![0u8; p];
            for _ in 0..(p - 1) * PER_SENDER {
                let (b, s) = mpi.recv_bytes(COMM_WORLD, ANY_SOURCE, ANY_TAG);
                assert_eq!(
                    b[0], next_seq[s.source],
                    "per-sender FIFO violated for sender {}",
                    s.source
                );
                next_seq[s.source] += 1;
            }
            for (sender, &n) in next_seq.iter().enumerate().skip(1) {
                assert_eq!(n as usize, PER_SENDER, "sender {sender} shortchanged");
            }
        } else {
            for i in 0..PER_SENDER {
                mpi.send_bytes(
                    COMM_WORLD,
                    0,
                    (mpi.rank() * 1000 + i) as u32,
                    Bytes::from(vec![i as u8]),
                );
            }
        }
    });
}

#[test]
fn interleaved_tags_matched_out_of_order() {
    // sender emits tags in one order; receiver consumes them in a
    // deterministic shuffled order; everything must match exactly
    const N: u32 = 40;
    run_spmd(1, 2, move |mpi| {
        if mpi.rank() == 0 {
            for tag in 0..N {
                mpi.send_bytes(COMM_WORLD, 1, tag, Bytes::from(vec![tag as u8; 3]));
            }
        } else {
            // deterministic shuffle: stride walk coprime with N
            let mut tag = 0u32;
            for _ in 0..N {
                tag = (tag + 17) % N;
                let (b, s) = mpi.recv_bytes(COMM_WORLD, Some(0), Some(tag));
                assert_eq!(s.tag, tag);
                assert_eq!(&b[..], &[tag as u8; 3]);
            }
        }
    });
}

#[test]
fn many_outstanding_irecvs() {
    run_spmd(2, 1, |mpi| {
        const N: usize = 30;
        if mpi.rank() == 0 {
            let reqs: Vec<_> = (0..N)
                .map(|i| mpi.irecv(COMM_WORLD, Some(1), Some(i as u32)))
                .collect();
            // nothing has arrived yet
            assert!(reqs.iter().all(|r| !mpi.test(r)));
            mpi.send_bytes(COMM_WORLD, 1, 999, Bytes::new()); // go signal
            let results = mpi.waitall(reqs);
            for (i, (b, s)) in results.iter().enumerate() {
                assert_eq!(s.tag, i as u32);
                assert_eq!(b.len(), i % 7);
            }
        } else {
            let _ = mpi.recv_bytes(COMM_WORLD, Some(0), Some(999));
            // send in reverse order: posted-receive order must not matter
            for i in (0..N).rev() {
                mpi.send_bytes(COMM_WORLD, 0, i as u32, Bytes::from(vec![0u8; i % 7]));
            }
        }
    });
}

#[test]
fn concurrent_collectives_on_disjoint_subcomms() {
    run_spmd(2, 2, |mpi| {
        let me = mpi.rank();
        // split into {0,1} and {2,3}; run different collective sequences
        let sub = mpi.comm_split(COMM_WORLD, (me / 2) as i64, me as i64);
        if me / 2 == 0 {
            let s = mpi.allreduce_comm(sub, &[me as f64], Op::Sum)[0];
            assert_eq!(s, 1.0);
            mpi.barrier(sub);
            let s = mpi.allreduce_comm(sub, &[1.0], Op::Sum)[0];
            assert_eq!(s, 2.0);
        } else {
            // a different number of collectives on the other subcomm
            for k in 0..4 {
                let s = mpi.allreduce_comm(sub, &[k as f64], Op::Max)[0];
                assert_eq!(s, k as f64);
            }
        }
        // then everyone meets on the world communicator
        let total = mpi.allreduce(&[1.0], Op::Sum)[0];
        assert_eq!(total, 4.0);
    });
}

#[test]
fn large_payload_integrity() {
    run_spmd(2, 1, |mpi| {
        const MB: usize = 4 << 20;
        if mpi.rank() == 0 {
            let data: Vec<u8> = (0..MB).map(|i| (i * 31 % 251) as u8).collect();
            mpi.send_bytes(COMM_WORLD, 1, 0, Bytes::from(data));
        } else {
            let (b, s) = mpi.recv_bytes(COMM_WORLD, Some(0), Some(0));
            assert_eq!(s.bytes, MB);
            assert!(b.iter().enumerate().all(|(i, &x)| x == (i * 31 % 251) as u8));
        }
    });
}

#[test]
fn ring_pipeline_with_many_vps_per_pe() {
    // deep overdecomposition: 16 ranks on 2 PEs passing a token around
    let log = Arc::new(Mutex::new(Vec::new()));
    let l2 = log.clone();
    run_spmd(2, 8, move |mpi| {
        let p = mpi.size();
        let me = mpi.rank();
        if me == 0 {
            mpi.send_bytes(COMM_WORLD, 1, 0, Bytes::from(vec![0u8]));
            let (b, _) = mpi.recv_bytes(COMM_WORLD, Some(p - 1), Some(0));
            assert_eq!(b[0] as usize, p - 1);
            l2.lock().push(p);
        } else {
            let (b, _) = mpi.recv_bytes(COMM_WORLD, Some(me - 1), Some(0));
            assert_eq!(b[0] as usize, me - 1);
            mpi.send_bytes(COMM_WORLD, (me + 1) % p, 0, Bytes::from(vec![me as u8]));
        }
    });
    assert_eq!(*log.lock(), vec![16]);
}
