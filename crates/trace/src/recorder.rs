//! The recorder: per-PE ring buffers plus exact event counters.
//!
//! Design constraints (all load-bearing for Fig. 6):
//!
//! * **Disabled is free.** [`Tracer::record`] starts with one relaxed
//!   atomic load; a disabled tracer costs a predictable branch.
//! * **Enabled never allocates on the hot path.** Every ring buffer is
//!   allocated to full capacity up front; recording into a full ring
//!   overwrites the oldest event instead of growing.
//! * **Counts stay exact.** A fixed array of counters is bumped on every
//!   record, so aggregate numbers (context switches, migrations, LB
//!   steps…) remain correct even after rings wrap — that is what lets
//!   the integration tests reconcile a trace against a `RunReport`.

use crate::event::{Event, EventKind};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Default ring capacity per PE (events). At 48 bytes per event this is
/// under 1 MB per PE.
pub const DEFAULT_PE_CAPACITY: usize = 16 * 1024;

/// Aggregate counters, bumped on every recorded event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCounts {
    pub ctx_switches: u64,
    pub blocks: u64,
    pub unblocks: u64,
    pub msgs_sent: u64,
    pub msgs_recv: u64,
    pub send_bytes: u64,
    pub recv_bytes: u64,
    pub migrations: u64,
    pub migration_bytes: u64,
    pub lb_steps: u64,
    pub segment_copies: u64,
    pub segment_copy_bytes: u64,
    pub got_fixups: u64,
    pub priv_installs: u64,
    pub region_copies: u64,
    pub region_copy_bytes: u64,
    pub mpi_calls: u64,
    /// Data-message copies dropped in transit by the fault plan.
    pub msg_drops: u64,
    /// Ack copies dropped in transit by the fault plan.
    pub ack_drops: u64,
    /// Copies discarded at the receiver for checksum mismatch.
    pub msg_corrupts: u64,
    /// Retransmissions issued by the reliable-delivery layer.
    pub msg_retransmits: u64,
    /// Duplicate copies suppressed by receive-side dedup.
    pub dup_suppressed: u64,
    /// PEs killed by fault injection.
    pub pe_fails: u64,
    /// Coordinated checkpoints taken.
    pub checkpoints: u64,
    /// Total bytes of primary checkpoint images.
    pub checkpoint_bytes: u64,
    /// Coordinated rollback/restore operations.
    pub recoveries: u64,
    /// Capability probes evaluated at startup (one per method rated).
    pub method_probes: u64,
    /// Method degradations taken by the fallback chain.
    pub method_fallbacks: u64,
    /// ULT stack red-zone violations detected.
    pub stack_guard_trips: u64,
    /// Arena guard violations (double free / UAF / foreign pointer).
    pub arena_guard_trips: u64,
    /// Segment-integrity audits performed at barriers.
    pub segment_audits: u64,
    /// Message sends whose payload fit the envelope pool's inline
    /// storage (allocation-free lifecycle).
    pub pool_hits: u64,
    /// Message sends whose payload spilled to a refcounted heap buffer.
    pub pool_misses: u64,
    /// Simulated copy-on-write faults (writes trapping on shared pages).
    pub page_faults: u64,
    /// Pages privatized by the COW fault handler.
    pub pages_privatized: u64,
    /// Bytes copied template → backing store by page privatizations.
    pub page_copy_bytes: u64,
    /// End-of-run COW deduplication audits.
    pub dedup_audits: u64,
    /// Elastic rescales committed (active-PE set changed at a barrier).
    pub rescales: u64,
    /// Rescales abandoned because a PE failure struck the same barrier.
    pub rescale_aborts: u64,
    /// Buddy-checkpoint re-replications onto a new geometry.
    pub re_replications: u64,
    /// Total bytes of primary images in re-replicated checkpoints.
    pub re_replication_bytes: u64,
    /// Checkpoints restored onto a different geometry than taken.
    pub geometry_restores: u64,
    /// Degenerate-buddy warnings (buddy == primary: single alive PE).
    pub buddy_degenerates: u64,
    /// Incremental checkpoint delta captures at LB barriers.
    pub ckpt_deltas: u64,
    /// Dirty page-chunks captured across all delta captures.
    pub ckpt_delta_pages: u64,
    /// Sparse patch payload bytes across all delta captures.
    pub ckpt_delta_bytes: u64,
    /// Consistent-cut seals of in-flight deltas at LB barriers.
    pub ckpt_seals: u64,
    /// Asynchronous delta drains to buddy PEs.
    pub ckpt_async_drains: u64,
    /// Delta payload bytes drained asynchronously to buddy PEs.
    pub ckpt_async_bytes: u64,
    /// Delta-chain compactions (fresh base replacing a chain).
    pub ckpt_compacts: u64,
    /// Nonblocking requests posted (`ReqPost`).
    pub req_posts: u64,
    /// Nonblocking requests completed (`ReqComplete`).
    pub req_completes: u64,
    /// Completions that ran a continuation closure (`ReqContinuation`).
    pub req_continuations: u64,
    /// Wait-family suspensions on pending requests (`ReqWaitBlock`).
    pub req_wait_blocks: u64,
}

impl TraceCounts {
    /// Total events recorded (one per counted occurrence; byte counters
    /// excluded).
    pub fn total_events(&self) -> u64 {
        self.ctx_switches
            + self.blocks
            + self.unblocks
            + self.msgs_sent
            + self.msgs_recv
            + self.migrations
            + self.lb_steps
            + self.segment_copies
            + self.got_fixups
            + self.priv_installs
            + self.region_copies
            + self.mpi_calls
            + self.msg_drops
            + self.ack_drops
            + self.msg_corrupts
            + self.msg_retransmits
            + self.dup_suppressed
            + self.pe_fails
            + self.checkpoints
            + self.recoveries
            + self.method_probes
            + self.method_fallbacks
            + self.stack_guard_trips
            + self.arena_guard_trips
            + self.segment_audits
            + self.pool_hits
            + self.pool_misses
            + self.page_faults
            + self.pages_privatized
            + self.dedup_audits
            + self.rescales
            + self.rescale_aborts
            + self.re_replications
            + self.geometry_restores
            + self.buddy_degenerates
            + self.ckpt_deltas
            + self.ckpt_seals
            + self.ckpt_async_drains
            + self.ckpt_compacts
            + self.req_posts
            + self.req_completes
            + self.req_continuations
            + self.req_wait_blocks
    }
}

const N_COUNTERS: usize = 54;

// Counter slot indices (mirrors TraceCounts field order).
const C_CTX: usize = 0;
const C_BLOCK: usize = 1;
const C_UNBLOCK: usize = 2;
const C_SEND: usize = 3;
const C_RECV: usize = 4;
const C_SEND_BYTES: usize = 5;
const C_RECV_BYTES: usize = 6;
const C_MIG: usize = 7;
const C_MIG_BYTES: usize = 8;
const C_LB: usize = 9;
const C_SEG: usize = 10;
const C_SEG_BYTES: usize = 11;
const C_GOT: usize = 12;
const C_PRIV: usize = 13;
const C_REGION: usize = 14;
const C_REGION_BYTES: usize = 15;
const C_MPI: usize = 16;
const C_MSG_DROP: usize = 17;
const C_ACK_DROP: usize = 18;
const C_CORRUPT: usize = 19;
const C_RETRANSMIT: usize = 20;
const C_DUP_SUPPRESSED: usize = 21;
const C_PE_FAIL: usize = 22;
const C_CHECKPOINT: usize = 23;
const C_CHECKPOINT_BYTES: usize = 24;
const C_RECOVERY: usize = 25;
const C_METHOD_PROBE: usize = 26;
const C_METHOD_FALLBACK: usize = 27;
const C_STACK_GUARD: usize = 28;
const C_ARENA_GUARD: usize = 29;
const C_SEGMENT_AUDIT: usize = 30;
const C_POOL_HIT: usize = 31;
const C_POOL_MISS: usize = 32;
const C_PAGE_FAULT: usize = 33;
const C_PAGE_PRIV: usize = 34;
const C_PAGE_COPY_BYTES: usize = 35;
const C_DEDUP_AUDIT: usize = 36;
const C_RESCALE: usize = 37;
const C_RESCALE_ABORT: usize = 38;
const C_REREPLICATE: usize = 39;
const C_REREPLICATE_BYTES: usize = 40;
const C_GEOM_RESTORE: usize = 41;
const C_BUDDY_DEGEN: usize = 42;
const C_CKPT_DELTA: usize = 43;
const C_CKPT_DELTA_PAGES: usize = 44;
const C_CKPT_DELTA_BYTES: usize = 45;
const C_CKPT_SEAL: usize = 46;
const C_CKPT_ASYNC_DRAIN: usize = 47;
const C_CKPT_ASYNC_BYTES: usize = 48;
const C_CKPT_COMPACT: usize = 49;
const C_REQ_POST: usize = 50;
const C_REQ_COMPLETE: usize = 51;
const C_REQ_CONT: usize = 52;
const C_REQ_WAIT: usize = 53;

/// Fixed-capacity ring of the most recent events on one PE.
struct PeRing {
    buf: Vec<Event>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    capacity: usize,
}

impl PeRing {
    fn new(capacity: usize) -> PeRing {
        PeRing {
            buf: Vec::with_capacity(capacity),
            head: 0,
            capacity,
        }
    }

    /// Append, overwriting the oldest event when full. Returns whether an
    /// event was overwritten. Never allocates: `buf` was reserved to
    /// `capacity` at construction.
    fn push(&mut self, e: Event) -> bool {
        if self.buf.len() < self.capacity {
            self.buf.push(e);
            false
        } else {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % self.capacity;
            true
        }
    }

    /// Events in chronological (sequence) order.
    fn ordered(&self) -> Vec<Event> {
        let mut v = Vec::with_capacity(self.buf.len());
        v.extend_from_slice(&self.buf[self.head..]);
        v.extend_from_slice(&self.buf[..self.head]);
        v
    }
}

/// The per-job event recorder. Cheap to consult when disabled; shared
/// between the machine and whoever wants the trace afterwards.
pub struct Tracer {
    enabled: AtomicBool,
    seq: AtomicU64,
    dropped: AtomicU64,
    counters: [AtomicU64; N_COUNTERS],
    pes: Vec<Mutex<PeRing>>,
    /// Final (busy_ns, idle_ns) per PE, filled by the machine at run end
    /// so summaries can report utilization without a `RunReport`.
    pe_clocks: Mutex<Vec<(u64, u64)>>,
}

impl Tracer {
    /// A tracer for `n_pes` PEs with the default per-PE ring capacity,
    /// created **disabled**.
    pub fn new(n_pes: usize) -> Arc<Tracer> {
        Tracer::with_capacity(n_pes, DEFAULT_PE_CAPACITY)
    }

    /// A tracer with `capacity` ring slots per PE.
    pub fn with_capacity(n_pes: usize, capacity: usize) -> Arc<Tracer> {
        let capacity = capacity.max(1);
        Arc::new(Tracer {
            enabled: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            pes: (0..n_pes.max(1)).map(|_| Mutex::new(PeRing::new(capacity))).collect(),
            pe_clocks: Mutex::new(vec![(0, 0); n_pes.max(1)]),
        })
    }

    pub fn n_pes(&self) -> usize {
        self.pes.len()
    }

    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record one event. The first instruction is the enabled check —
    /// this is the whole cost when tracing is off.
    #[inline]
    pub fn record(&self, pe: usize, rank: u32, t_ns: u64, kind: EventKind) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.record_enabled(pe, rank, t_ns, kind);
    }

    #[cold]
    fn record_enabled(&self, pe: usize, rank: u32, t_ns: u64, kind: EventKind) {
        self.count(kind);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let pe_slot = pe.min(self.pes.len() - 1);
        let e = Event {
            seq,
            t_ns,
            pe: pe as u32,
            rank,
            kind,
        };
        if self.pes[pe_slot].lock().push(e) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn count(&self, kind: EventKind) {
        let bump = |i: usize, by: u64| {
            self.counters[i].fetch_add(by, Ordering::Relaxed);
        };
        match kind {
            EventKind::CtxSwitchIn { .. } => bump(C_CTX, 1),
            EventKind::Block => bump(C_BLOCK, 1),
            EventKind::Unblock => bump(C_UNBLOCK, 1),
            EventKind::MsgSend { bytes, .. } => {
                bump(C_SEND, 1);
                bump(C_SEND_BYTES, bytes as u64);
            }
            EventKind::MsgRecv { bytes, .. } => {
                bump(C_RECV, 1);
                bump(C_RECV_BYTES, bytes as u64);
            }
            EventKind::Migration { bytes, .. } => {
                bump(C_MIG, 1);
                bump(C_MIG_BYTES, bytes);
            }
            EventKind::LbStep { .. } => bump(C_LB, 1),
            EventKind::SegmentCopy { bytes, .. } => {
                bump(C_SEG, 1);
                bump(C_SEG_BYTES, bytes);
            }
            EventKind::GotFixup { .. } => bump(C_GOT, 1),
            EventKind::PrivInstall { .. } => bump(C_PRIV, 1),
            EventKind::RegionCopy { bytes, .. } => {
                bump(C_REGION, 1);
                bump(C_REGION_BYTES, bytes);
            }
            EventKind::MpiCall { .. } => bump(C_MPI, 1),
            EventKind::MsgDrop { ack, .. } => {
                bump(if ack { C_ACK_DROP } else { C_MSG_DROP }, 1)
            }
            EventKind::MsgCorrupt { .. } => bump(C_CORRUPT, 1),
            EventKind::MsgRetransmit { .. } => bump(C_RETRANSMIT, 1),
            EventKind::MsgDupSuppressed { .. } => bump(C_DUP_SUPPRESSED, 1),
            EventKind::PeFail { .. } => bump(C_PE_FAIL, 1),
            EventKind::CheckpointTaken { bytes, .. } => {
                bump(C_CHECKPOINT, 1);
                bump(C_CHECKPOINT_BYTES, bytes);
            }
            EventKind::Recovery { .. } => bump(C_RECOVERY, 1),
            EventKind::MethodProbe { .. } => bump(C_METHOD_PROBE, 1),
            EventKind::MethodFallback { .. } => bump(C_METHOD_FALLBACK, 1),
            EventKind::StackGuardTrip { .. } => bump(C_STACK_GUARD, 1),
            EventKind::ArenaGuardTrip { .. } => bump(C_ARENA_GUARD, 1),
            EventKind::SegmentAudit { .. } => bump(C_SEGMENT_AUDIT, 1),
            EventKind::MsgPool { inline } => {
                bump(if inline { C_POOL_HIT } else { C_POOL_MISS }, 1)
            }
            EventKind::PageFault { .. } => bump(C_PAGE_FAULT, 1),
            EventKind::PagePrivatized { bytes, .. } => {
                bump(C_PAGE_PRIV, 1);
                bump(C_PAGE_COPY_BYTES, bytes);
            }
            EventKind::DedupAudit { .. } => bump(C_DEDUP_AUDIT, 1),
            EventKind::Rescale { .. } => bump(C_RESCALE, 1),
            EventKind::RescaleAborted { .. } => bump(C_RESCALE_ABORT, 1),
            EventKind::ReReplicate { bytes, .. } => {
                bump(C_REREPLICATE, 1);
                bump(C_REREPLICATE_BYTES, bytes);
            }
            EventKind::GeometryRestore { .. } => bump(C_GEOM_RESTORE, 1),
            EventKind::BuddyDegenerate { .. } => bump(C_BUDDY_DEGEN, 1),
            EventKind::CkptDelta { pages, bytes, .. } => {
                bump(C_CKPT_DELTA, 1);
                bump(C_CKPT_DELTA_PAGES, pages);
                bump(C_CKPT_DELTA_BYTES, bytes);
            }
            EventKind::CkptSeal { .. } => bump(C_CKPT_SEAL, 1),
            EventKind::CkptAsyncDrain { bytes } => {
                bump(C_CKPT_ASYNC_DRAIN, 1);
                bump(C_CKPT_ASYNC_BYTES, bytes);
            }
            EventKind::CkptCompact { .. } => bump(C_CKPT_COMPACT, 1),
            EventKind::ReqPost { .. } => bump(C_REQ_POST, 1),
            EventKind::ReqComplete { .. } => bump(C_REQ_COMPLETE, 1),
            EventKind::ReqContinuation { .. } => bump(C_REQ_CONT, 1),
            EventKind::ReqWaitBlock { .. } => bump(C_REQ_WAIT, 1),
        }
    }

    /// Store a PE's final busy/idle clocks (the machine calls this when
    /// a run completes).
    pub fn set_pe_clock(&self, pe: usize, busy_ns: u64, idle_ns: u64) {
        let mut clocks = self.pe_clocks.lock();
        if let Some(slot) = clocks.get_mut(pe) {
            *slot = (busy_ns, idle_ns);
        }
    }

    /// Exact aggregate counts so far.
    pub fn counts(&self) -> TraceCounts {
        let c = |i: usize| self.counters[i].load(Ordering::Relaxed);
        TraceCounts {
            ctx_switches: c(C_CTX),
            blocks: c(C_BLOCK),
            unblocks: c(C_UNBLOCK),
            msgs_sent: c(C_SEND),
            msgs_recv: c(C_RECV),
            send_bytes: c(C_SEND_BYTES),
            recv_bytes: c(C_RECV_BYTES),
            migrations: c(C_MIG),
            migration_bytes: c(C_MIG_BYTES),
            lb_steps: c(C_LB),
            segment_copies: c(C_SEG),
            segment_copy_bytes: c(C_SEG_BYTES),
            got_fixups: c(C_GOT),
            priv_installs: c(C_PRIV),
            region_copies: c(C_REGION),
            region_copy_bytes: c(C_REGION_BYTES),
            mpi_calls: c(C_MPI),
            msg_drops: c(C_MSG_DROP),
            ack_drops: c(C_ACK_DROP),
            msg_corrupts: c(C_CORRUPT),
            msg_retransmits: c(C_RETRANSMIT),
            dup_suppressed: c(C_DUP_SUPPRESSED),
            pe_fails: c(C_PE_FAIL),
            checkpoints: c(C_CHECKPOINT),
            checkpoint_bytes: c(C_CHECKPOINT_BYTES),
            recoveries: c(C_RECOVERY),
            method_probes: c(C_METHOD_PROBE),
            method_fallbacks: c(C_METHOD_FALLBACK),
            stack_guard_trips: c(C_STACK_GUARD),
            arena_guard_trips: c(C_ARENA_GUARD),
            segment_audits: c(C_SEGMENT_AUDIT),
            pool_hits: c(C_POOL_HIT),
            pool_misses: c(C_POOL_MISS),
            page_faults: c(C_PAGE_FAULT),
            pages_privatized: c(C_PAGE_PRIV),
            page_copy_bytes: c(C_PAGE_COPY_BYTES),
            dedup_audits: c(C_DEDUP_AUDIT),
            rescales: c(C_RESCALE),
            rescale_aborts: c(C_RESCALE_ABORT),
            re_replications: c(C_REREPLICATE),
            re_replication_bytes: c(C_REREPLICATE_BYTES),
            geometry_restores: c(C_GEOM_RESTORE),
            buddy_degenerates: c(C_BUDDY_DEGEN),
            ckpt_deltas: c(C_CKPT_DELTA),
            ckpt_delta_pages: c(C_CKPT_DELTA_PAGES),
            ckpt_delta_bytes: c(C_CKPT_DELTA_BYTES),
            ckpt_seals: c(C_CKPT_SEAL),
            ckpt_async_drains: c(C_CKPT_ASYNC_DRAIN),
            ckpt_async_bytes: c(C_CKPT_ASYNC_BYTES),
            ckpt_compacts: c(C_CKPT_COMPACT),
            req_posts: c(C_REQ_POST),
            req_completes: c(C_REQ_COMPLETE),
            req_continuations: c(C_REQ_CONT),
            req_wait_blocks: c(C_REQ_WAIT),
        }
    }

    /// Events overwritten because a PE's ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy out the current state for reporting.
    pub fn snapshot(&self) -> TraceSnapshot {
        let per_pe: Vec<PeTrace> = self
            .pes
            .iter()
            .enumerate()
            .map(|(pe, ring)| {
                let (busy_ns, idle_ns) = self.pe_clocks.lock()[pe];
                PeTrace {
                    pe,
                    events: ring.lock().ordered(),
                    busy_ns,
                    idle_ns,
                }
            })
            .collect();
        TraceSnapshot {
            counts: self.counts(),
            dropped: self.dropped(),
            per_pe,
        }
    }
}

/// One PE's slice of a snapshot.
#[derive(Debug, Clone)]
pub struct PeTrace {
    pub pe: usize,
    /// Most recent events on this PE, oldest first.
    pub events: Vec<Event>,
    pub busy_ns: u64,
    pub idle_ns: u64,
}

impl PeTrace {
    pub fn utilization(&self) -> f64 {
        let total = self.busy_ns + self.idle_ns;
        if total == 0 {
            0.0
        } else {
            self.busy_ns as f64 / total as f64
        }
    }
}

/// A consistent copy of the trace: exact counts plus the retained events.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    pub counts: TraceCounts,
    pub dropped: u64,
    pub per_pe: Vec<PeTrace>,
}

impl TraceSnapshot {
    pub fn n_pes(&self) -> usize {
        self.per_pe.len()
    }

    /// All retained events merged across PEs, in global sequence order.
    pub fn events_sorted(&self) -> Vec<Event> {
        let mut all: Vec<Event> = self.per_pe.iter().flat_map(|p| p.events.iter().copied()).collect();
        all.sort_by_key(|e| e.seq);
        all
    }

    /// (from, to) → (messages, bytes) aggregated over retained send
    /// events, heaviest edge first. Truncated if rings wrapped.
    pub fn message_edges(&self) -> Vec<((u32, u32), (u64, u64))> {
        let mut edges: std::collections::HashMap<(u32, u32), (u64, u64)> = Default::default();
        for p in &self.per_pe {
            for e in &p.events {
                if let EventKind::MsgSend { to, bytes, .. } = e.kind {
                    let slot = edges.entry((e.rank, to)).or_default();
                    slot.0 += 1;
                    slot.1 += bytes as u64;
                }
            }
        }
        let mut v: Vec<_> = edges.into_iter().collect();
        v.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_RANK;

    #[test]
    fn disabled_records_nothing() {
        let t = Tracer::new(2);
        t.record(0, 0, 0, EventKind::Block);
        assert_eq!(t.counts(), TraceCounts::default());
        assert!(t.snapshot().per_pe[0].events.is_empty());
    }

    #[test]
    fn counts_and_events_agree() {
        let t = Tracer::new(2);
        t.enable();
        t.record(0, 0, 10, EventKind::CtxSwitchIn { ctx_work: true });
        t.record(1, 1, 20, EventKind::MsgSend { to: 0, tag: 7, bytes: 64 });
        t.record(0, 0, 30, EventKind::MsgRecv { from: 1, tag: 7, bytes: 64 });
        t.record(0, NO_RANK, 40, EventKind::LbStep { step: 1, migrations: 0 });
        let c = t.counts();
        assert_eq!(c.ctx_switches, 1);
        assert_eq!(c.msgs_sent, 1);
        assert_eq!(c.send_bytes, 64);
        assert_eq!(c.msgs_recv, 1);
        assert_eq!(c.lb_steps, 1);
        assert_eq!(c.total_events(), 4);
        let snap = t.snapshot();
        let merged = snap.events_sorted();
        assert_eq!(merged.len(), 4);
        // sequence numbers are strictly increasing across PEs
        for w in merged.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn ring_wraps_without_losing_counts() {
        let t = Tracer::with_capacity(1, 8);
        t.enable();
        for i in 0..20 {
            t.record(0, 0, i, EventKind::Block);
        }
        assert_eq!(t.counts().blocks, 20);
        assert_eq!(t.dropped(), 12);
        let snap = t.snapshot();
        assert_eq!(snap.per_pe[0].events.len(), 8);
        // retained events are the most recent, oldest first
        let ts: Vec<u64> = snap.per_pe[0].events.iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, (12..20).collect::<Vec<_>>());
    }

    #[test]
    fn message_edges_aggregate() {
        let t = Tracer::new(1);
        t.enable();
        for _ in 0..3 {
            t.record(0, 2, 0, EventKind::MsgSend { to: 5, tag: 1, bytes: 100 });
        }
        t.record(0, 5, 0, EventKind::MsgSend { to: 2, tag: 1, bytes: 10 });
        let edges = t.snapshot().message_edges();
        assert_eq!(edges[0], ((2, 5), (3, 300)));
        assert_eq!(edges[1], ((5, 2), (1, 10)));
    }

    #[test]
    fn pe_clock_utilization() {
        let t = Tracer::new(2);
        t.set_pe_clock(0, 75, 25);
        let snap = t.snapshot();
        assert!((snap.per_pe[0].utilization() - 0.75).abs() < 1e-12);
        assert_eq!(snap.per_pe[1].utilization(), 0.0);
    }
}
