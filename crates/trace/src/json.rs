//! Hand-rolled JSON export (the workspace carries no serde).
//!
//! The format is stable and flat so external tooling (or a test) can
//! consume it with any JSON parser:
//!
//! ```json
//! {
//!   "version": 1,
//!   "n_pes": 2,
//!   "dropped": 0,
//!   "counts": { "ctx_switches": 12, ... },
//!   "pes": [
//!     { "pe": 0, "busy_ns": 10, "idle_ns": 2, "events": [
//!       { "seq": 0, "t_ns": 0, "pe": 0, "rank": 0,
//!         "kind": "ctx_switch_in", "ctx_work": true }, ... ] } ]
//! }
//! ```
//!
//! `counts` are exact even when rings wrapped; `events` are the retained
//! (most recent) events per PE. Events carried by no rank (LB steps)
//! have `"rank": null`.

use crate::event::{Event, EventKind, NO_RANK};
use crate::recorder::TraceSnapshot;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn event_json(e: &Event) -> String {
    let mut s = format!(
        "{{\"seq\": {}, \"t_ns\": {}, \"pe\": {}, \"rank\": {}, \"kind\": \"{}\"",
        e.seq,
        e.t_ns,
        e.pe,
        if e.rank == NO_RANK {
            "null".to_string()
        } else {
            e.rank.to_string()
        },
        e.kind.tag()
    );
    match e.kind {
        EventKind::CtxSwitchIn { ctx_work } => {
            s.push_str(&format!(", \"ctx_work\": {ctx_work}"));
        }
        EventKind::Block | EventKind::Unblock => {}
        EventKind::MsgSend { to, tag, bytes } => {
            s.push_str(&format!(", \"to\": {to}, \"tag\": {tag}, \"bytes\": {bytes}"));
        }
        EventKind::MsgRecv { from, tag, bytes } => {
            s.push_str(&format!(
                ", \"from\": {from}, \"tag\": {tag}, \"bytes\": {bytes}"
            ));
        }
        EventKind::Migration {
            from_pe,
            to_pe,
            bytes,
        } => {
            s.push_str(&format!(
                ", \"from_pe\": {from_pe}, \"to_pe\": {to_pe}, \"bytes\": {bytes}"
            ));
        }
        EventKind::LbStep { step, migrations } => {
            s.push_str(&format!(", \"step\": {step}, \"migrations\": {migrations}"));
        }
        EventKind::SegmentCopy { segment, bytes } => {
            s.push_str(&format!(
                ", \"segment\": \"{}\", \"bytes\": {bytes}",
                segment.as_str()
            ));
        }
        EventKind::GotFixup { entries } => {
            s.push_str(&format!(", \"entries\": {entries}"));
        }
        EventKind::PrivInstall { reg } => {
            s.push_str(&format!(", \"reg\": \"{}\"", reg.as_str()));
        }
        EventKind::RegionCopy { dir, regions, bytes } => {
            s.push_str(&format!(
                ", \"dir\": \"{}\", \"regions\": {regions}, \"bytes\": {bytes}",
                dir.as_str()
            ));
        }
        EventKind::MpiCall { name } => {
            s.push_str(&format!(", \"name\": \"{}\"", escape(name)));
        }
        EventKind::MsgDrop { from, to, seq, ack } => {
            s.push_str(&format!(
                ", \"from\": {from}, \"to\": {to}, \"msg_seq\": {seq}, \"ack\": {ack}"
            ));
        }
        EventKind::MsgCorrupt { from, to, seq } => {
            s.push_str(&format!(
                ", \"from\": {from}, \"to\": {to}, \"msg_seq\": {seq}"
            ));
        }
        EventKind::MsgRetransmit {
            from,
            to,
            seq,
            attempt,
        } => {
            s.push_str(&format!(
                ", \"from\": {from}, \"to\": {to}, \"msg_seq\": {seq}, \"attempt\": {attempt}"
            ));
        }
        EventKind::MsgDupSuppressed { from, to, seq } => {
            s.push_str(&format!(
                ", \"from\": {from}, \"to\": {to}, \"msg_seq\": {seq}"
            ));
        }
        EventKind::PeFail { pe, ranks_lost } => {
            s.push_str(&format!(", \"failed_pe\": {pe}, \"ranks_lost\": {ranks_lost}"));
        }
        EventKind::CheckpointTaken { step, bytes } => {
            s.push_str(&format!(", \"step\": {step}, \"bytes\": {bytes}"));
        }
        EventKind::Recovery { ranks } => {
            s.push_str(&format!(", \"ranks\": {ranks}"));
        }
        EventKind::MethodProbe { method, verdict } => {
            s.push_str(&format!(
                ", \"method\": \"{}\", \"verdict\": \"{}\"",
                escape(method),
                verdict.as_str()
            ));
        }
        EventKind::MethodFallback { from, to } => {
            s.push_str(&format!(
                ", \"from_method\": \"{}\", \"to_method\": \"{}\"",
                escape(from),
                escape(to)
            ));
        }
        EventKind::StackGuardTrip { stack_size } => {
            s.push_str(&format!(", \"stack_size\": {stack_size}"));
        }
        EventKind::ArenaGuardTrip { kind } => {
            s.push_str(&format!(", \"trip\": \"{}\"", kind.as_str()));
        }
        EventKind::SegmentAudit { ranks, dirty } => {
            s.push_str(&format!(", \"ranks\": {ranks}, \"dirty\": {dirty}"));
        }
        EventKind::MsgPool { inline } => {
            s.push_str(&format!(", \"inline\": {inline}"));
        }
        EventKind::PageFault { page } => {
            s.push_str(&format!(", \"page\": {page}"));
        }
        EventKind::PagePrivatized { page, bytes } => {
            s.push_str(&format!(", \"page\": {page}, \"bytes\": {bytes}"));
        }
        EventKind::DedupAudit {
            ranks,
            shared_pages,
            total_pages,
        } => {
            s.push_str(&format!(
                ", \"ranks\": {ranks}, \"shared_pages\": {shared_pages}, \"total_pages\": {total_pages}"
            ));
        }
        EventKind::Rescale {
            from_pes,
            to_pes,
            moved_ranks,
        } => {
            s.push_str(&format!(
                ", \"from_pes\": {from_pes}, \"to_pes\": {to_pes}, \"moved_ranks\": {moved_ranks}"
            ));
        }
        EventKind::RescaleAborted { from_pes, to_pes } => {
            s.push_str(&format!(", \"from_pes\": {from_pes}, \"to_pes\": {to_pes}"));
        }
        EventKind::ReReplicate { ranks, bytes } => {
            s.push_str(&format!(", \"ranks\": {ranks}, \"bytes\": {bytes}"));
        }
        EventKind::GeometryRestore { ranks, to_pes } => {
            s.push_str(&format!(", \"ranks\": {ranks}, \"to_pes\": {to_pes}"));
        }
        EventKind::BuddyDegenerate { pe, ranks } => {
            s.push_str(&format!(", \"degenerate_pe\": {pe}, \"ranks\": {ranks}"));
        }
        EventKind::CkptDelta {
            step,
            ranks,
            pages,
            bytes,
        } => {
            s.push_str(&format!(
                ", \"step\": {step}, \"ranks\": {ranks}, \"pages\": {pages}, \"bytes\": {bytes}"
            ));
        }
        EventKind::CkptSeal { step, epoch } => {
            s.push_str(&format!(", \"step\": {step}, \"epoch\": {epoch}"));
        }
        EventKind::CkptAsyncDrain { bytes } => {
            s.push_str(&format!(", \"bytes\": {bytes}"));
        }
        EventKind::CkptCompact { chain, bytes } => {
            s.push_str(&format!(", \"chain\": {chain}, \"bytes\": {bytes}"));
        }
        EventKind::ReqPost { req, send } => {
            s.push_str(&format!(", \"req\": {req}, \"send\": {send}"));
        }
        EventKind::ReqComplete { req, send } => {
            s.push_str(&format!(", \"req\": {req}, \"send\": {send}"));
        }
        EventKind::ReqContinuation { req } => {
            s.push_str(&format!(", \"req\": {req}"));
        }
        EventKind::ReqWaitBlock { waiting } => {
            s.push_str(&format!(", \"waiting\": {waiting}"));
        }
    }
    s.push('}');
    s
}

impl TraceSnapshot {
    /// Serialize the snapshot. See the module docs for the schema.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let c = &self.counts;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"version\": 1,\n  \"n_pes\": {},\n  \"dropped\": {},\n",
            self.n_pes(),
            self.dropped
        );
        let _ = writeln!(
            out,
            "  \"counts\": {{\"ctx_switches\": {}, \"blocks\": {}, \"unblocks\": {}, \
             \"msgs_sent\": {}, \"msgs_recv\": {}, \"send_bytes\": {}, \"recv_bytes\": {}, \
             \"migrations\": {}, \"migration_bytes\": {}, \"lb_steps\": {}, \
             \"segment_copies\": {}, \"segment_copy_bytes\": {}, \"got_fixups\": {}, \
             \"priv_installs\": {}, \"region_copies\": {}, \"region_copy_bytes\": {}, \
             \"mpi_calls\": {}, \"msg_drops\": {}, \"ack_drops\": {}, \"msg_corrupts\": {}, \
             \"msg_retransmits\": {}, \"dup_suppressed\": {}, \"pe_fails\": {}, \
             \"checkpoints\": {}, \"checkpoint_bytes\": {}, \"recoveries\": {}, \
             \"method_probes\": {}, \"method_fallbacks\": {}, \"stack_guard_trips\": {}, \
             \"arena_guard_trips\": {}, \"segment_audits\": {}, \"pool_hits\": {}, \
             \"pool_misses\": {}, \"page_faults\": {}, \"pages_privatized\": {}, \
             \"page_copy_bytes\": {}, \"dedup_audits\": {}, \"rescales\": {}, \
             \"rescale_aborts\": {}, \"re_replications\": {}, \"re_replication_bytes\": {}, \
             \"geometry_restores\": {}, \"buddy_degenerates\": {}, \
             \"ckpt_deltas\": {}, \"ckpt_delta_pages\": {}, \"ckpt_delta_bytes\": {}, \
             \"ckpt_seals\": {}, \"ckpt_async_drains\": {}, \"ckpt_async_bytes\": {}, \
             \"ckpt_compacts\": {}, \"req_posts\": {}, \"req_completes\": {}, \
             \"req_continuations\": {}, \"req_wait_blocks\": {}}},",
            c.ctx_switches,
            c.blocks,
            c.unblocks,
            c.msgs_sent,
            c.msgs_recv,
            c.send_bytes,
            c.recv_bytes,
            c.migrations,
            c.migration_bytes,
            c.lb_steps,
            c.segment_copies,
            c.segment_copy_bytes,
            c.got_fixups,
            c.priv_installs,
            c.region_copies,
            c.region_copy_bytes,
            c.mpi_calls,
            c.msg_drops,
            c.ack_drops,
            c.msg_corrupts,
            c.msg_retransmits,
            c.dup_suppressed,
            c.pe_fails,
            c.checkpoints,
            c.checkpoint_bytes,
            c.recoveries,
            c.method_probes,
            c.method_fallbacks,
            c.stack_guard_trips,
            c.arena_guard_trips,
            c.segment_audits,
            c.pool_hits,
            c.pool_misses,
            c.page_faults,
            c.pages_privatized,
            c.page_copy_bytes,
            c.dedup_audits,
            c.rescales,
            c.rescale_aborts,
            c.re_replications,
            c.re_replication_bytes,
            c.geometry_restores,
            c.buddy_degenerates,
            c.ckpt_deltas,
            c.ckpt_delta_pages,
            c.ckpt_delta_bytes,
            c.ckpt_seals,
            c.ckpt_async_drains,
            c.ckpt_async_bytes,
            c.ckpt_compacts,
            c.req_posts,
            c.req_completes,
            c.req_continuations,
            c.req_wait_blocks
        );
        out.push_str("  \"pes\": [\n");
        for (i, p) in self.per_pe.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"pe\": {}, \"busy_ns\": {}, \"idle_ns\": {}, \"events\": [",
                p.pe, p.busy_ns, p.idle_ns
            );
            for (j, e) in p.events.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str("\n      ");
                out.push_str(&event_json(e));
            }
            if !p.events.is_empty() {
                out.push_str("\n    ");
            }
            out.push_str("]}");
            if i + 1 < self.per_pe.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Pull an integer field out of exported JSON by key, e.g.
/// `json_u64(&json, "ctx_switches")`. First occurrence wins — intended
/// for the top-level `counts` object, whose keys are unique. Returns
/// `None` if the key is absent or not followed by an integer.
pub fn json_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, Tracer};

    #[test]
    fn export_and_readback() {
        let t = Tracer::new(2);
        t.enable();
        t.record(0, 0, 5, EventKind::CtxSwitchIn { ctx_work: true });
        t.record(0, 0, 6, EventKind::MsgSend { to: 1, tag: 9, bytes: 32 });
        t.record(1, 1, 7, EventKind::MsgRecv { from: 0, tag: 9, bytes: 32 });
        t.record(
            0,
            crate::NO_RANK,
            8,
            EventKind::LbStep { step: 1, migrations: 2 },
        );
        t.record(0, 0, 9, EventKind::MpiCall { name: "MPI_Send" });
        let json = t.snapshot().to_json();
        assert_eq!(json_u64(&json, "ctx_switches"), Some(1));
        assert_eq!(json_u64(&json, "msgs_sent"), Some(1));
        assert_eq!(json_u64(&json, "send_bytes"), Some(32));
        assert_eq!(json_u64(&json, "lb_steps"), Some(1));
        assert!(json.contains("\"rank\": null"));
        assert!(json.contains("\"kind\": \"mpi_call\", \"name\": \"MPI_Send\""));
        // structurally sane: balanced braces/brackets
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn fault_events_export() {
        let t = Tracer::new(2);
        t.enable();
        t.record(
            0,
            crate::NO_RANK,
            1,
            EventKind::MsgDrop { from: 2, to: 3, seq: 7, ack: false },
        );
        t.record(
            0,
            crate::NO_RANK,
            2,
            EventKind::MsgDrop { from: 3, to: 2, seq: 9, ack: true },
        );
        t.record(
            0,
            crate::NO_RANK,
            3,
            EventKind::MsgRetransmit { from: 2, to: 3, seq: 7, attempt: 1 },
        );
        t.record(
            0,
            crate::NO_RANK,
            4,
            EventKind::MsgCorrupt { from: 2, to: 3, seq: 8 },
        );
        t.record(
            0,
            crate::NO_RANK,
            5,
            EventKind::MsgDupSuppressed { from: 2, to: 3, seq: 7 },
        );
        t.record(1, crate::NO_RANK, 6, EventKind::PeFail { pe: 1, ranks_lost: 3 });
        t.record(
            0,
            crate::NO_RANK,
            7,
            EventKind::CheckpointTaken { step: 2, bytes: 1024 },
        );
        t.record(0, crate::NO_RANK, 8, EventKind::Recovery { ranks: 6 });
        let json = t.snapshot().to_json();
        assert_eq!(json_u64(&json, "msg_drops"), Some(1));
        assert_eq!(json_u64(&json, "ack_drops"), Some(1));
        assert_eq!(json_u64(&json, "msg_corrupts"), Some(1));
        assert_eq!(json_u64(&json, "msg_retransmits"), Some(1));
        assert_eq!(json_u64(&json, "dup_suppressed"), Some(1));
        assert_eq!(json_u64(&json, "pe_fails"), Some(1));
        assert_eq!(json_u64(&json, "checkpoints"), Some(1));
        assert_eq!(json_u64(&json, "checkpoint_bytes"), Some(1024));
        assert_eq!(json_u64(&json, "recoveries"), Some(1));
        assert!(json.contains("\"kind\": \"msg_drop\", \"from\": 2, \"to\": 3, \"msg_seq\": 7, \"ack\": false"));
        assert!(json.contains("\"kind\": \"msg_retransmit\", \"from\": 2, \"to\": 3, \"msg_seq\": 7, \"attempt\": 1"));
        assert!(json.contains("\"kind\": \"pe_fail\", \"failed_pe\": 1, \"ranks_lost\": 3"));
        assert!(json.contains("\"kind\": \"checkpoint_taken\", \"step\": 2, \"bytes\": 1024"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn hardening_events_export() {
        use crate::event::{ArenaTrip, ProbeVerdict};
        let t = Tracer::new(1);
        t.enable();
        t.record(
            0,
            crate::NO_RANK,
            1,
            EventKind::MethodProbe {
                method: "pipglobals",
                verdict: ProbeVerdict::ResourceLimited,
            },
        );
        t.record(
            0,
            crate::NO_RANK,
            2,
            EventKind::MethodFallback {
                from: "pipglobals",
                to: "fsglobals",
            },
        );
        t.record(0, 3, 3, EventKind::StackGuardTrip { stack_size: 131072 });
        t.record(
            0,
            4,
            4,
            EventKind::ArenaGuardTrip {
                kind: ArenaTrip::DoubleFree,
            },
        );
        t.record(0, crate::NO_RANK, 5, EventKind::SegmentAudit { ranks: 8, dirty: 1 });
        let c = t.counts();
        assert_eq!(c.method_probes, 1);
        assert_eq!(c.method_fallbacks, 1);
        assert_eq!(c.stack_guard_trips, 1);
        assert_eq!(c.arena_guard_trips, 1);
        assert_eq!(c.segment_audits, 1);
        assert_eq!(c.total_events(), 5);
        let json = t.snapshot().to_json();
        assert_eq!(json_u64(&json, "method_probes"), Some(1));
        assert_eq!(json_u64(&json, "method_fallbacks"), Some(1));
        assert_eq!(json_u64(&json, "stack_guard_trips"), Some(1));
        assert_eq!(json_u64(&json, "arena_guard_trips"), Some(1));
        assert_eq!(json_u64(&json, "segment_audits"), Some(1));
        assert!(json.contains(
            "\"kind\": \"method_probe\", \"method\": \"pipglobals\", \"verdict\": \"resource_limited\""
        ));
        assert!(json.contains(
            "\"kind\": \"method_fallback\", \"from_method\": \"pipglobals\", \"to_method\": \"fsglobals\""
        ));
        assert!(json.contains("\"kind\": \"arena_guard_trip\", \"trip\": \"double_free\""));
        assert!(json.contains("\"kind\": \"segment_audit\", \"ranks\": 8, \"dirty\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn elastic_events_export() {
        let t = Tracer::new(2);
        t.enable();
        t.record(
            0,
            crate::NO_RANK,
            1,
            EventKind::Rescale { from_pes: 4, to_pes: 2, moved_ranks: 5 },
        );
        t.record(
            0,
            crate::NO_RANK,
            2,
            EventKind::RescaleAborted { from_pes: 2, to_pes: 4 },
        );
        t.record(
            0,
            crate::NO_RANK,
            3,
            EventKind::ReReplicate { ranks: 8, bytes: 2048 },
        );
        t.record(
            0,
            crate::NO_RANK,
            4,
            EventKind::GeometryRestore { ranks: 8, to_pes: 3 },
        );
        t.record(1, crate::NO_RANK, 5, EventKind::BuddyDegenerate { pe: 1, ranks: 8 });
        let c = t.counts();
        assert_eq!(c.rescales, 1);
        assert_eq!(c.rescale_aborts, 1);
        assert_eq!(c.re_replications, 1);
        assert_eq!(c.re_replication_bytes, 2048);
        assert_eq!(c.geometry_restores, 1);
        assert_eq!(c.buddy_degenerates, 1);
        assert_eq!(c.total_events(), 5);
        let json = t.snapshot().to_json();
        assert_eq!(json_u64(&json, "rescales"), Some(1));
        assert_eq!(json_u64(&json, "rescale_aborts"), Some(1));
        assert_eq!(json_u64(&json, "re_replications"), Some(1));
        assert_eq!(json_u64(&json, "re_replication_bytes"), Some(2048));
        assert_eq!(json_u64(&json, "geometry_restores"), Some(1));
        assert_eq!(json_u64(&json, "buddy_degenerates"), Some(1));
        assert!(json.contains("\"kind\": \"rescale\", \"from_pes\": 4, \"to_pes\": 2, \"moved_ranks\": 5"));
        assert!(json.contains("\"kind\": \"re_replicate\", \"ranks\": 8, \"bytes\": 2048"));
        assert!(json.contains("\"kind\": \"buddy_degenerate\", \"degenerate_pe\": 1, \"ranks\": 8"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn ckpt_events_export() {
        let t = Tracer::new(1);
        t.enable();
        t.record(
            0,
            crate::NO_RANK,
            1,
            EventKind::CkptDelta { step: 3, ranks: 4, pages: 9, bytes: 4096 },
        );
        t.record(0, crate::NO_RANK, 2, EventKind::CkptSeal { step: 4, epoch: 2 });
        t.record(0, crate::NO_RANK, 3, EventKind::CkptAsyncDrain { bytes: 4096 });
        t.record(0, crate::NO_RANK, 4, EventKind::CkptCompact { chain: 5, bytes: 8192 });
        let c = t.counts();
        assert_eq!(c.ckpt_deltas, 1);
        assert_eq!(c.ckpt_delta_pages, 9);
        assert_eq!(c.ckpt_delta_bytes, 4096);
        assert_eq!(c.ckpt_seals, 1);
        assert_eq!(c.ckpt_async_drains, 1);
        assert_eq!(c.ckpt_async_bytes, 4096);
        assert_eq!(c.ckpt_compacts, 1);
        assert_eq!(c.total_events(), 4);
        let json = t.snapshot().to_json();
        assert_eq!(json_u64(&json, "ckpt_deltas"), Some(1));
        assert_eq!(json_u64(&json, "ckpt_delta_pages"), Some(9));
        assert_eq!(json_u64(&json, "ckpt_delta_bytes"), Some(4096));
        assert_eq!(json_u64(&json, "ckpt_seals"), Some(1));
        assert_eq!(json_u64(&json, "ckpt_async_drains"), Some(1));
        assert_eq!(json_u64(&json, "ckpt_async_bytes"), Some(4096));
        assert_eq!(json_u64(&json, "ckpt_compacts"), Some(1));
        assert!(json.contains(
            "\"kind\": \"ckpt_delta\", \"step\": 3, \"ranks\": 4, \"pages\": 9, \"bytes\": 4096"
        ));
        assert!(json.contains("\"kind\": \"ckpt_seal\", \"step\": 4, \"epoch\": 2"));
        assert!(json.contains("\"kind\": \"ckpt_async_drain\", \"bytes\": 4096"));
        assert!(json.contains("\"kind\": \"ckpt_compact\", \"chain\": 5, \"bytes\": 8192"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn req_events_export() {
        let t = Tracer::new(1);
        t.enable();
        t.record(0, 0, 1, EventKind::ReqPost { req: 7, send: true });
        t.record(0, 0, 2, EventKind::ReqPost { req: 8, send: false });
        t.record(0, 0, 3, EventKind::ReqWaitBlock { waiting: 2 });
        t.record(0, 0, 4, EventKind::ReqComplete { req: 8, send: false });
        t.record(0, 0, 5, EventKind::ReqContinuation { req: 8 });
        let c = t.counts();
        assert_eq!(c.req_posts, 2);
        assert_eq!(c.req_completes, 1);
        assert_eq!(c.req_continuations, 1);
        assert_eq!(c.req_wait_blocks, 1);
        assert_eq!(c.total_events(), 5);
        let json = t.snapshot().to_json();
        assert_eq!(json_u64(&json, "req_posts"), Some(2));
        assert_eq!(json_u64(&json, "req_completes"), Some(1));
        assert_eq!(json_u64(&json, "req_continuations"), Some(1));
        assert_eq!(json_u64(&json, "req_wait_blocks"), Some(1));
        assert!(json.contains("\"kind\": \"req_post\", \"req\": 7, \"send\": true"));
        assert!(json.contains("\"kind\": \"req_complete\", \"req\": 8, \"send\": false"));
        assert!(json.contains("\"kind\": \"req_continuation\", \"req\": 8"));
        assert!(json.contains("\"kind\": \"req_wait_block\", \"waiting\": 2"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_u64_misses_cleanly() {
        assert_eq!(json_u64("{}", "nope"), None);
        assert_eq!(json_u64("{\"k\": \"str\"}", "k"), None);
    }

    #[test]
    fn escape_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
