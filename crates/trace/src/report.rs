//! Projections-style plain-text summary of a trace snapshot.

use crate::recorder::TraceSnapshot;

fn fmt_bytes(b: u64) -> String {
    if b >= 10 << 20 {
        format!("{:.1} MB", b as f64 / 1e6)
    } else if b >= 10 << 10 {
        format!("{:.1} KB", b as f64 / 1e3)
    } else {
        format!("{b} B")
    }
}

impl TraceSnapshot {
    /// Human-readable overview: totals, per-PE utilization/idle/switch
    /// table, and the top-`k` heaviest rank→rank message edges.
    pub fn summary(&self, top_k: usize) -> String {
        use std::fmt::Write;
        let c = &self.counts;
        let mut out = String::new();
        let retained: usize = self.per_pe.iter().map(|p| p.events.len()).sum();
        let _ = writeln!(
            out,
            "trace summary: {} PEs, {} events ({} retained, {} overwritten)",
            self.n_pes(),
            c.total_events(),
            retained,
            self.dropped
        );
        let _ = writeln!(
            out,
            "  context switches: {}   blocks/unblocks: {}/{}",
            c.ctx_switches, c.blocks, c.unblocks
        );
        let _ = writeln!(
            out,
            "  messages: {} sent ({}) / {} delivered ({})",
            c.msgs_sent,
            fmt_bytes(c.send_bytes),
            c.msgs_recv,
            fmt_bytes(c.recv_bytes)
        );
        let _ = writeln!(
            out,
            "  migrations: {} ({})   LB steps: {}   region copies: {} ({})",
            c.migrations,
            fmt_bytes(c.migration_bytes),
            c.lb_steps,
            c.region_copies,
            fmt_bytes(c.region_copy_bytes)
        );
        let _ = writeln!(
            out,
            "  privatizer: {} segment copies ({}), {} GOT fixups, {} register installs   MPI calls: {}",
            c.segment_copies,
            fmt_bytes(c.segment_copy_bytes),
            c.got_fixups,
            c.priv_installs,
            c.mpi_calls
        );
        let fault_total = c.msg_drops
            + c.ack_drops
            + c.msg_corrupts
            + c.msg_retransmits
            + c.dup_suppressed
            + c.pe_fails
            + c.checkpoints
            + c.recoveries;
        if fault_total > 0 {
            let _ = writeln!(
                out,
                "  faults: {} drops ({} ack), {} corrupt, {} retransmits, {} dups suppressed",
                c.msg_drops + c.ack_drops,
                c.ack_drops,
                c.msg_corrupts,
                c.msg_retransmits,
                c.dup_suppressed
            );
            let _ = writeln!(
                out,
                "  recovery: {} checkpoints ({}), {} PE failures, {} rollbacks",
                c.checkpoints,
                fmt_bytes(c.checkpoint_bytes),
                c.pe_fails,
                c.recoveries
            );
        }
        let hardening_total = c.method_probes
            + c.method_fallbacks
            + c.stack_guard_trips
            + c.arena_guard_trips
            + c.segment_audits;
        if hardening_total > 0 {
            let _ = writeln!(
                out,
                "  hardening: {} probes, {} fallbacks, {} stack trips, {} arena trips, {} audits",
                c.method_probes,
                c.method_fallbacks,
                c.stack_guard_trips,
                c.arena_guard_trips,
                c.segment_audits
            );
        }
        let cow_total = c.page_faults + c.pages_privatized + c.dedup_audits;
        if cow_total > 0 {
            let _ = writeln!(
                out,
                "  cow: {} page faults, {} pages privatized ({}), {} dedup audits",
                c.page_faults,
                c.pages_privatized,
                fmt_bytes(c.page_copy_bytes),
                c.dedup_audits
            );
        }
        let elastic_total = c.rescales
            + c.rescale_aborts
            + c.re_replications
            + c.geometry_restores
            + c.buddy_degenerates;
        if elastic_total > 0 {
            let _ = writeln!(
                out,
                "  elastic: {} rescales ({} aborted), {} re-replications ({}), \
                 {} geometry restores, {} degenerate buddies",
                c.rescales,
                c.rescale_aborts,
                c.re_replications,
                fmt_bytes(c.re_replication_bytes),
                c.geometry_restores,
                c.buddy_degenerates
            );
        }

        let ckpt_total = c.ckpt_deltas + c.ckpt_seals + c.ckpt_async_drains + c.ckpt_compacts;
        if ckpt_total > 0 {
            let _ = writeln!(
                out,
                "  ckpt: {} deltas ({} pages, {}), {} seals, {} async drains ({}), {} compactions",
                c.ckpt_deltas,
                c.ckpt_delta_pages,
                fmt_bytes(c.ckpt_delta_bytes),
                c.ckpt_seals,
                c.ckpt_async_drains,
                fmt_bytes(c.ckpt_async_bytes),
                c.ckpt_compacts
            );
        }

        // per-PE table: switch counts come from retained events so the
        // column stays meaningful even without a RunReport
        let _ = writeln!(out, "   PE   util%   idle%   switches   events");
        for p in &self.per_pe {
            let util = p.utilization();
            let idle = if p.busy_ns + p.idle_ns == 0 {
                0.0
            } else {
                1.0 - util
            };
            let switches = p
                .events
                .iter()
                .filter(|e| matches!(e.kind, crate::EventKind::CtxSwitchIn { .. }))
                .count();
            let _ = writeln!(
                out,
                "  {:>3}   {:>5.1}   {:>5.1}   {:>8}   {:>6}",
                p.pe,
                util * 100.0,
                idle * 100.0,
                switches,
                p.events.len()
            );
        }

        let edges = self.message_edges();
        if !edges.is_empty() {
            let _ = writeln!(out, "  top message edges (rank -> rank):");
            for ((from, to), (msgs, bytes)) in edges.iter().take(top_k.max(1)) {
                let _ = writeln!(
                    out,
                    "    {from:>4} -> {to:<4}  {} in {} msgs",
                    fmt_bytes(*bytes),
                    msgs
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{EventKind, Tracer};

    #[test]
    fn summary_renders_all_sections() {
        let t = Tracer::new(2);
        t.enable();
        t.record(0, 0, 0, EventKind::CtxSwitchIn { ctx_work: false });
        t.record(0, 0, 1, EventKind::MsgSend { to: 1, tag: 3, bytes: 2048 });
        t.record(1, 1, 2, EventKind::MsgRecv { from: 0, tag: 3, bytes: 2048 });
        t.record(
            0,
            0,
            3,
            EventKind::Migration {
                from_pe: 0,
                to_pe: 1,
                bytes: 1 << 20,
            },
        );
        t.set_pe_clock(0, 90, 10);
        t.set_pe_clock(1, 50, 50);
        let s = t.snapshot().summary(5);
        assert!(s.contains("2 PEs"));
        assert!(s.contains("context switches: 1"));
        assert!(s.contains("migrations: 1"));
        assert!(s.contains("top message edges"));
        assert!(s.contains("0 -> 1"));
        assert!(s.contains("90.0"), "PE 0 utilization missing:\n{s}");
        // no fault activity → no fault section
        assert!(!s.contains("faults:"), "unexpected fault section:\n{s}");
    }

    #[test]
    fn summary_renders_fault_section_when_active() {
        let t = Tracer::new(1);
        t.enable();
        t.record(
            0,
            crate::NO_RANK,
            0,
            EventKind::MsgDrop { from: 0, to: 1, seq: 4, ack: false },
        );
        t.record(
            0,
            crate::NO_RANK,
            1,
            EventKind::MsgRetransmit { from: 0, to: 1, seq: 4, attempt: 1 },
        );
        t.record(
            0,
            crate::NO_RANK,
            2,
            EventKind::CheckpointTaken { step: 1, bytes: 4096 },
        );
        t.record(0, crate::NO_RANK, 3, EventKind::PeFail { pe: 0, ranks_lost: 2 });
        t.record(0, crate::NO_RANK, 4, EventKind::Recovery { ranks: 4 });
        let s = t.snapshot().summary(3);
        assert!(s.contains("faults: 1 drops (0 ack), 0 corrupt, 1 retransmits"), "{s}");
        assert!(s.contains("recovery: 1 checkpoints"), "{s}");
        assert!(s.contains("1 PE failures, 1 rollbacks"), "{s}");
        assert!(!s.contains("hardening:"), "unexpected hardening section:\n{s}");
    }

    #[test]
    fn summary_renders_hardening_section_when_active() {
        use crate::event::ProbeVerdict;
        let t = Tracer::new(1);
        t.enable();
        t.record(
            0,
            crate::NO_RANK,
            0,
            EventKind::MethodProbe {
                method: "pipglobals",
                verdict: ProbeVerdict::ResourceLimited,
            },
        );
        t.record(
            0,
            crate::NO_RANK,
            1,
            EventKind::MethodFallback { from: "pipglobals", to: "fsglobals" },
        );
        t.record(0, crate::NO_RANK, 2, EventKind::SegmentAudit { ranks: 4, dirty: 0 });
        let s = t.snapshot().summary(3);
        assert!(
            s.contains("hardening: 1 probes, 1 fallbacks, 0 stack trips, 0 arena trips, 1 audits"),
            "{s}"
        );
        assert!(!s.contains("cow:"), "unexpected cow section:\n{s}");
    }

    #[test]
    fn summary_renders_elastic_section_when_active() {
        let t = Tracer::new(2);
        t.enable();
        t.record(
            0,
            crate::NO_RANK,
            0,
            EventKind::Rescale { from_pes: 4, to_pes: 2, moved_ranks: 3 },
        );
        t.record(
            0,
            crate::NO_RANK,
            1,
            EventKind::ReReplicate { ranks: 8, bytes: 4096 },
        );
        t.record(
            0,
            crate::NO_RANK,
            2,
            EventKind::RescaleAborted { from_pes: 2, to_pes: 4 },
        );
        t.record(
            0,
            crate::NO_RANK,
            3,
            EventKind::GeometryRestore { ranks: 8, to_pes: 3 },
        );
        t.record(1, crate::NO_RANK, 4, EventKind::BuddyDegenerate { pe: 1, ranks: 8 });
        let s = t.snapshot().summary(3);
        assert!(
            s.contains(
                "elastic: 1 rescales (1 aborted), 1 re-replications (4096 B), \
                 1 geometry restores, 1 degenerate buddies"
            ),
            "{s}"
        );
    }

    #[test]
    fn summary_renders_ckpt_section_when_active() {
        let t = Tracer::new(1);
        t.enable();
        t.record(
            0,
            crate::NO_RANK,
            0,
            EventKind::CkptDelta { step: 2, ranks: 4, pages: 6, bytes: 2048 },
        );
        t.record(0, crate::NO_RANK, 1, EventKind::CkptSeal { step: 3, epoch: 2 });
        t.record(0, crate::NO_RANK, 2, EventKind::CkptAsyncDrain { bytes: 2048 });
        t.record(0, crate::NO_RANK, 3, EventKind::CkptCompact { chain: 4, bytes: 8192 });
        let s = t.snapshot().summary(3);
        assert!(
            s.contains("ckpt: 1 deltas (6 pages, 2048 B), 1 seals, 1 async drains (2048 B), 1 compactions"),
            "{s}"
        );
    }

    #[test]
    fn summary_renders_cow_section_when_active() {
        let t = Tracer::new(1);
        t.enable();
        t.record(0, 2, 0, EventKind::PageFault { page: 7 });
        t.record(0, 2, 1, EventKind::PagePrivatized { page: 7, bytes: 4096 });
        t.record(
            0,
            crate::NO_RANK,
            2,
            EventKind::DedupAudit {
                ranks: 4,
                shared_pages: 250,
                total_pages: 256,
            },
        );
        let s = t.snapshot().summary(3);
        assert!(
            s.contains("cow: 1 page faults, 1 pages privatized (4096 B), 1 dedup audits"),
            "{s}"
        );
    }
}
