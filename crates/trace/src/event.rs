//! Trace event vocabulary.
//!
//! Every event is a fixed-size `Copy` value so the recorder's hot path
//! never allocates: variable-length information (MPI call names) is
//! carried as `&'static str`.

/// Sentinel rank for events not attributable to a virtual rank (LB steps,
/// scheduler-side bookkeeping).
pub const NO_RANK: u32 = u32::MAX;

/// Which program segment a privatizer copied for a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    Code,
    Data,
    Tls,
}

impl Segment {
    pub fn as_str(self) -> &'static str {
        match self {
            Segment::Code => "code",
            Segment::Data => "data",
            Segment::Tls => "tls",
        }
    }
}

/// Direction of an Isomalloc rank-memory copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyDir {
    /// Regions → wire buffer (migration/checkpoint pack).
    Pack,
    /// Wire buffer → regions (migration/checkpoint unpack).
    Unpack,
}

impl CopyDir {
    pub fn as_str(self) -> &'static str {
        match self {
            CopyDir::Pack => "pack",
            CopyDir::Unpack => "unpack",
        }
    }
}

/// Which privatization register a context switch installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivReg {
    Tls,
    Got,
}

impl PrivReg {
    pub fn as_str(self) -> &'static str {
        match self {
            PrivReg::Tls => "tls",
            PrivReg::Got => "got",
        }
    }
}

/// Verdict of a startup capability probe for one privatization method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeVerdict {
    Feasible,
    ResourceLimited,
    Unsupported,
}

impl ProbeVerdict {
    pub fn as_str(self) -> &'static str {
        match self {
            ProbeVerdict::Feasible => "feasible",
            ProbeVerdict::ResourceLimited => "resource_limited",
            ProbeVerdict::Unsupported => "unsupported",
        }
    }
}

/// What an isomalloc arena guard caught.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArenaTrip {
    DoubleFree,
    UseAfterFree,
    ForeignPointer,
}

impl ArenaTrip {
    pub fn as_str(self) -> &'static str {
        match self {
            ArenaTrip::DoubleFree => "double_free",
            ArenaTrip::UseAfterFree => "use_after_free",
            ArenaTrip::ForeignPointer => "foreign_pointer",
        }
    }
}

/// One traced runtime occurrence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// The scheduler switched a PE to a rank's ULT.
    CtxSwitchIn {
        /// Whether the rank's privatization method performs register
        /// work on activation (Fig. 6's differentiator).
        ctx_work: bool,
    },
    /// A rank blocked on communication (parked in `Recv`).
    Block,
    /// A message arrival woke a blocked rank.
    Unblock,
    /// A rank posted a message.
    MsgSend { to: u32, tag: u64, bytes: u32 },
    /// A message reached its destination rank's mailbox.
    MsgRecv { from: u32, tag: u64, bytes: u32 },
    /// A rank's memory moved between PEs.
    Migration { from_pe: u32, to_pe: u32, bytes: u64 },
    /// One load-balancing sync step completed.
    LbStep { step: u32, migrations: u32 },
    /// A privatizer copied a program segment for a rank (startup).
    SegmentCopy { segment: Segment, bytes: u64 },
    /// A privatizer rebased a rank's GOT entries (startup).
    GotFixup { entries: u32 },
    /// A context switch installed a privatization register (TLS/GOT).
    PrivInstall { reg: PrivReg },
    /// Isomalloc packed/unpacked a rank's regions (migration,
    /// checkpoint, or restore).
    RegionCopy {
        dir: CopyDir,
        regions: u32,
        bytes: u64,
    },
    /// An MPI-level entry point ran (AMPI layer).
    MpiCall { name: &'static str },
    /// The lossy network dropped a message copy in transit (`ack` marks
    /// acknowledgement copies of the reliable-delivery layer).
    MsgDrop {
        from: u32,
        to: u32,
        seq: u64,
        ack: bool,
    },
    /// A message copy arrived with a checksum mismatch and was discarded
    /// (the retransmit path recovers it).
    MsgCorrupt { from: u32, to: u32, seq: u64 },
    /// The reliable-delivery layer retransmitted an unacknowledged
    /// message (`attempt` counts transmissions; 1 = first retransmit).
    MsgRetransmit {
        from: u32,
        to: u32,
        seq: u64,
        attempt: u32,
    },
    /// The receiver discarded a duplicate copy of an already-delivered
    /// message (network duplication or a spurious retransmit).
    MsgDupSuppressed { from: u32, to: u32, seq: u64 },
    /// A PE was killed by fault injection; `ranks_lost` ranks resided
    /// there.
    PeFail { pe: u32, ranks_lost: u32 },
    /// A coordinated checkpoint was taken at an LB step (`bytes` is the
    /// total primary image size).
    CheckpointTaken { step: u32, bytes: u64 },
    /// A coordinated rollback restored `ranks` ranks from checkpoint
    /// images.
    Recovery { ranks: u32 },
    /// A startup capability probe rated one privatization method for the
    /// requested run shape.
    MethodProbe {
        method: &'static str,
        verdict: ProbeVerdict,
    },
    /// Startup degraded from an infeasible (or mid-startup-failing)
    /// method to the next feasible one in the fallback chain.
    MethodFallback {
        from: &'static str,
        to: &'static str,
    },
    /// A ULT stack red zone was found clobbered at a guard check (the
    /// rank field names the overflowing rank).
    StackGuardTrip { stack_size: u64 },
    /// An isomalloc arena guard caught an invalid free or a write to
    /// quarantined (freed) memory.
    ArenaGuardTrip { kind: ArenaTrip },
    /// A segment-integrity audit checksummed `ranks` privatized data
    /// segments at a barrier; `dirty` of them changed outside their
    /// owner's execution (cross-rank global bleed).
    SegmentAudit { ranks: u32, dirty: u32 },
    /// Envelope-pool classification of one message send: `inline` means
    /// the payload fit the pool's inline small-payload storage (≤ 64 B)
    /// and its whole send/retransmit/delivery lifecycle allocates
    /// nothing; otherwise it spilled to a refcounted heap buffer.
    MsgPool { inline: bool },
    /// A write trapped on a still-shared copy-on-write page (CowGlobals'
    /// simulated fault handler; the rank field names the writer).
    PageFault { page: u32 },
    /// The fault handler privatized the page: copied `bytes` from the
    /// shared template into the rank's backing store (plus any memoized
    /// patches for that page).
    PagePrivatized { page: u32, bytes: u64 },
    /// End-of-run deduplication audit over all copy-on-write ranks:
    /// `shared_pages` of the `total_pages` per-rank data-segment pages
    /// never diverged on any of the `ranks` ranks.
    DedupAudit {
        ranks: u32,
        shared_pages: u64,
        total_pages: u64,
    },
    /// The machine committed an elastic rescale at an LB barrier: the
    /// active-PE set changed from `from_pes` to `to_pes`, draining
    /// `moved_ranks` ranks off the deactivated PEs.
    Rescale {
        from_pes: u32,
        to_pes: u32,
        moved_ranks: u32,
    },
    /// A planned rescale was abandoned because a PE failure struck the
    /// same barrier; the machine kept the pre-rescale geometry.
    RescaleAborted { from_pes: u32, to_pes: u32 },
    /// Buddy checkpoints were re-replicated onto a new geometry after a
    /// rescale or geometry restore committed (`bytes` is the total
    /// primary image size of the fresh checkpoint).
    ReReplicate { ranks: u32, bytes: u64 },
    /// A coordinated checkpoint taken on one geometry was restored onto
    /// a different one: `ranks` ranks were re-placed across `to_pes`
    /// active PEs.
    GeometryRestore { ranks: u32, to_pes: u32 },
    /// Warning: checkpoint redundancy degenerated — with a single alive
    /// PE the buddy is the primary itself, so `ranks` images exist only
    /// once and one more PE loss is unrecoverable.
    BuddyDegenerate { pe: u32, ranks: u32 },
    /// An incremental checkpoint captured a delta at an LB barrier:
    /// `pages` dirty page-chunks across `ranks` ranks, `bytes` of sparse
    /// patch payload (vs. a full image repack).
    CkptDelta {
        step: u32,
        ranks: u32,
        pages: u64,
        bytes: u64,
    },
    /// The consistent-cut marker at an LB barrier sealed every in-flight
    /// delta: the buddy's sealed chain prefix now extends to `epoch`
    /// deltas past the base image.
    CkptSeal { step: u32, epoch: u32 },
    /// Asynchronously drained `bytes` of delta payload to the buddy PE
    /// between barriers (rides the reliable-delivery machinery, so drops
    /// and corruption are retransmitted/discarded as usual).
    CkptAsyncDrain { bytes: u64 },
    /// Delta-chain compaction: a fresh base image replaced a chain of
    /// `chain` deltas (`bytes` of patch payload folded away).
    CkptCompact { chain: u32, bytes: u64 },
    /// A nonblocking request entered the rank's request table (`send`
    /// distinguishes Isend from Irecv posts).
    ReqPost { req: u64, send: bool },
    /// A posted request completed: an Irecv matched an arriving message
    /// at delivery time, or an Isend's payload was acknowledged.
    ReqComplete { req: u64, send: bool },
    /// A completion ran a registered continuation closure instead of
    /// resuming a suspended ULT.
    ReqContinuation { req: u64 },
    /// A rank suspended inside `MPI_Wait`-family calls on `waiting`
    /// still-pending requests.
    ReqWaitBlock { waiting: u32 },
}

impl EventKind {
    /// Stable lowercase tag used by the JSON export and summaries.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::CtxSwitchIn { .. } => "ctx_switch_in",
            EventKind::Block => "block",
            EventKind::Unblock => "unblock",
            EventKind::MsgSend { .. } => "msg_send",
            EventKind::MsgRecv { .. } => "msg_recv",
            EventKind::Migration { .. } => "migration",
            EventKind::LbStep { .. } => "lb_step",
            EventKind::SegmentCopy { .. } => "segment_copy",
            EventKind::GotFixup { .. } => "got_fixup",
            EventKind::PrivInstall { .. } => "priv_install",
            EventKind::RegionCopy { .. } => "region_copy",
            EventKind::MpiCall { .. } => "mpi_call",
            EventKind::MsgDrop { .. } => "msg_drop",
            EventKind::MsgCorrupt { .. } => "msg_corrupt",
            EventKind::MsgRetransmit { .. } => "msg_retransmit",
            EventKind::MsgDupSuppressed { .. } => "msg_dup_suppressed",
            EventKind::PeFail { .. } => "pe_fail",
            EventKind::CheckpointTaken { .. } => "checkpoint_taken",
            EventKind::Recovery { .. } => "recovery",
            EventKind::MethodProbe { .. } => "method_probe",
            EventKind::MethodFallback { .. } => "method_fallback",
            EventKind::StackGuardTrip { .. } => "stack_guard_trip",
            EventKind::ArenaGuardTrip { .. } => "arena_guard_trip",
            EventKind::SegmentAudit { .. } => "segment_audit",
            EventKind::MsgPool { .. } => "msg_pool",
            EventKind::PageFault { .. } => "page_fault",
            EventKind::PagePrivatized { .. } => "page_privatized",
            EventKind::DedupAudit { .. } => "dedup_audit",
            EventKind::Rescale { .. } => "rescale",
            EventKind::RescaleAborted { .. } => "rescale_aborted",
            EventKind::ReReplicate { .. } => "re_replicate",
            EventKind::GeometryRestore { .. } => "geometry_restore",
            EventKind::BuddyDegenerate { .. } => "buddy_degenerate",
            EventKind::CkptDelta { .. } => "ckpt_delta",
            EventKind::CkptSeal { .. } => "ckpt_seal",
            EventKind::CkptAsyncDrain { .. } => "ckpt_async_drain",
            EventKind::CkptCompact { .. } => "ckpt_compact",
            EventKind::ReqPost { .. } => "req_post",
            EventKind::ReqComplete { .. } => "req_complete",
            EventKind::ReqContinuation { .. } => "req_continuation",
            EventKind::ReqWaitBlock { .. } => "req_wait_block",
        }
    }
}

/// A recorded event: what happened, where, and when.
///
/// `seq` is a tracer-wide monotonic sequence number, so merged per-PE
/// streams have a total order even when timestamps tie.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    pub seq: u64,
    /// Nanoseconds: virtual clock in virtual mode, wall time since the
    /// machine epoch in real-time mode.
    pub t_ns: u64,
    pub pe: u32,
    /// The rank involved, or [`NO_RANK`].
    pub rank: u32,
    pub kind: EventKind,
}
