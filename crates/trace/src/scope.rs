//! Thread-scoped emission for library crates.
//!
//! The scheduler owns the [`Tracer`](crate::Tracer), but several hooks
//! live in crates that have no handle to it (Isomalloc region copies,
//! privatizer segment copies and register installs, AMPI entry points).
//! Those call [`emit`], which resolves the tracer through a thread-local
//! scope the machine installs around rank execution — the same "current
//! rank" bookkeeping AMPI itself keeps.
//!
//! When no scope is installed anywhere in the process — every run
//! without tracing — [`emit`] is a single relaxed atomic load and a
//! predicted branch, so instrumented hot paths (e.g. the privatizer's
//! per-switch register install) stay at their Fig. 6 cost.

use crate::event::EventKind;
use crate::recorder::Tracer;
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of thread scopes installed process-wide; the fast gate.
static ACTIVE_SCOPES: AtomicUsize = AtomicUsize::new(0);

struct ScopeState {
    tracer: Arc<Tracer>,
    pe: usize,
    rank: u32,
    now_ns: u64,
}

thread_local! {
    static SCOPE: RefCell<Option<ScopeState>> = const { RefCell::new(None) };
}

/// RAII installation of a tracer as this thread's emission target.
/// Nests: dropping restores the previously installed scope.
pub struct ThreadScope {
    prev: Option<ScopeState>,
    restored: bool,
    /// Scopes bind to the installing thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl ThreadScope {
    pub fn install(tracer: Arc<Tracer>) -> ThreadScope {
        let prev = SCOPE.with(|s| {
            s.borrow_mut().replace(ScopeState {
                tracer,
                pe: 0,
                rank: crate::event::NO_RANK,
                now_ns: 0,
            })
        });
        ACTIVE_SCOPES.fetch_add(1, Ordering::Relaxed);
        ThreadScope {
            prev,
            restored: false,
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for ThreadScope {
    fn drop(&mut self) {
        if !self.restored {
            self.restored = true;
            ACTIVE_SCOPES.fetch_sub(1, Ordering::Relaxed);
            SCOPE.with(|s| *s.borrow_mut() = self.prev.take());
        }
    }
}

/// Update the current (pe, rank, time) attribution for [`emit`] calls on
/// this thread. No-op when no scope is installed.
#[inline]
pub fn set_context(pe: usize, rank: u32, now_ns: u64) {
    if ACTIVE_SCOPES.load(Ordering::Relaxed) == 0 {
        return;
    }
    SCOPE.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            st.pe = pe;
            st.rank = rank;
            st.now_ns = now_ns;
        }
    });
}

/// Record `kind` against the thread's current scope, if any.
///
/// This is the hook entry point for library crates. With no tracing
/// anywhere in the process it costs one relaxed load.
#[inline]
pub fn emit(kind: EventKind) {
    if ACTIVE_SCOPES.load(Ordering::Relaxed) == 0 {
        return;
    }
    emit_scoped(kind);
}

#[cold]
fn emit_scoped(kind: EventKind) {
    SCOPE.with(|s| {
        if let Some(st) = s.borrow().as_ref() {
            st.tracer.record(st.pe, st.rank, st.now_ns, kind);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_without_scope_is_a_noop() {
        emit(EventKind::Block);
        set_context(3, 1, 99);
    }

    #[test]
    fn scoped_emission_attributes_context() {
        let t = Tracer::new(4);
        t.enable();
        {
            let _scope = ThreadScope::install(t.clone());
            set_context(2, 7, 1234);
            emit(EventKind::GotFixup { entries: 3 });
        }
        // scope gone: this must not record
        emit(EventKind::GotFixup { entries: 9 });
        let snap = t.snapshot();
        assert_eq!(snap.counts.got_fixups, 1);
        let e = &snap.per_pe[2].events[0];
        assert_eq!(e.rank, 7);
        assert_eq!(e.t_ns, 1234);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = Tracer::new(1);
        let inner = Tracer::new(1);
        outer.enable();
        inner.enable();
        let _a = ThreadScope::install(outer.clone());
        set_context(0, 1, 1);
        {
            let _b = ThreadScope::install(inner.clone());
            set_context(0, 2, 2);
            emit(EventKind::Block);
        }
        // back to the outer scope, with its context intact
        emit(EventKind::Unblock);
        assert_eq!(inner.counts().blocks, 1);
        assert_eq!(outer.counts().blocks, 0);
        assert_eq!(outer.counts().unblocks, 1);
    }
}
