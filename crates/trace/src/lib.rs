//! # pvr-trace — low-overhead runtime event tracing
//!
//! A Projections-inspired per-PE event recorder for the `pvr` runtime:
//! the scheduler (and the AMPI/privatization/Isomalloc layers beneath
//! it) emit fixed-size events — context switches, rank block/unblock,
//! message send/receive with byte counts, migrations, LB steps,
//! privatizer segment copies and GOT fixups — into fixed-capacity ring
//! buffers, one per PE.
//!
//! Priorities, in order:
//!
//! 1. **Off means off.** Without a tracer configured the machine's hooks
//!    reduce to an `Option` branch, and library-crate hooks to one
//!    relaxed atomic load — the Fig. 6 context-switch numbers are
//!    unaffected.
//! 2. **No hot-path allocation.** Rings are pre-allocated; full rings
//!    overwrite their oldest event and count the loss.
//! 3. **Exact aggregates.** Counters are bumped on every event, so a
//!    trace can always be reconciled against the scheduler's own
//!    `RunReport` totals, even after rings wrap.
//!
//! ## Usage
//!
//! ```
//! use pvr_trace::{EventKind, Tracer};
//!
//! let tracer = Tracer::new(2);       // 2 PEs
//! tracer.enable();
//! tracer.record(0, 0, 100, EventKind::CtxSwitchIn { ctx_work: false });
//! let snap = tracer.snapshot();
//! assert_eq!(snap.counts.ctx_switches, 1);
//! println!("{}", snap.summary(10));  // Projections-style overview
//! let _json = snap.to_json();        // machine-readable export
//! ```
//!
//! The runtime integration: pass the tracer to
//! `MachineBuilder::tracer(...)` (in `pvr-rts`) and the machine installs
//! a [`ThreadScope`] around rank execution, so hooks deep in `pvr-ampi`,
//! `pvr-privatize` and `pvr-isomalloc` attribute their events to the
//! currently running rank via [`emit`].

mod event;
mod json;
mod recorder;
mod report;
mod scope;

pub use event::{ArenaTrip, CopyDir, Event, EventKind, PrivReg, ProbeVerdict, Segment, NO_RANK};
pub use json::json_u64;
pub use recorder::{PeTrace, TraceCounts, TraceSnapshot, Tracer, DEFAULT_PE_CAPACITY};
pub use scope::{emit, set_context, ThreadScope};
